// Property-based sweeps (parameterized gtest): invariants that must hold
// across the whole parameter space, not just hand-picked cases.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/random.h"
#include "crypto/cipher_suite.h"
#include "mac/frames.h"
#include "phy/error_model.h"
#include "phy/wifi_mode.h"

namespace wlansim {
namespace {

// --- Duration properties over (standard × mode × size) --------------------------

class DurationSweep
    : public ::testing::TestWithParam<std::tuple<PhyStandard, size_t /*mode idx*/>> {};

TEST_P(DurationSweep, DurationDecomposesIntoPreamblePlusPayload) {
  const auto [standard, mode_idx] = GetParam();
  const auto modes = ModesFor(standard);
  if (mode_idx >= modes.size()) {
    GTEST_SKIP();
  }
  const WifiMode& mode = modes[mode_idx];
  for (size_t bytes : {0u, 1u, 13u, 64u, 256u, 1000u, 1500u, 2304u}) {
    const Time full = FrameDuration(mode, bytes);
    const Time payload = PayloadDuration(mode, bytes);
    const Time preamble = full - payload;
    EXPECT_GT(preamble, Time::Zero()) << mode.name;
    // The preamble does not depend on the payload size.
    EXPECT_EQ(preamble, FrameDuration(mode, 0) - PayloadDuration(mode, 0)) << mode.name;
  }
}

TEST_P(DurationSweep, DurationStrictlyMonotoneInSizeModuloSymbolQuantization) {
  const auto [standard, mode_idx] = GetParam();
  const auto modes = ModesFor(standard);
  if (mode_idx >= modes.size()) {
    GTEST_SKIP();
  }
  const WifiMode& mode = modes[mode_idx];
  Time prev = FrameDuration(mode, 0);
  for (size_t bytes = 1; bytes <= 2304; bytes += 7) {
    const Time d = FrameDuration(mode, bytes);
    EXPECT_GE(d, prev) << mode.name << " at " << bytes;
    prev = d;
  }
}

TEST_P(DurationSweep, AirtimeTracksNominalRate) {
  const auto [standard, mode_idx] = GetParam();
  const auto modes = ModesFor(standard);
  if (mode_idx >= modes.size()) {
    GTEST_SKIP();
  }
  const WifiMode& mode = modes[mode_idx];
  // For a large frame, payload airtime must be within 2 % of bits/rate
  // (OFDM adds ≤ one symbol of quantization + 22 service/tail bits).
  constexpr size_t kBytes = 2000;
  const double expect_s = 8.0 * kBytes / mode.bit_rate_bps;
  EXPECT_NEAR(PayloadDuration(mode, kBytes).seconds(), expect_s, 0.02 * expect_s) << mode.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, DurationSweep,
    ::testing::Combine(::testing::Values(PhyStandard::k80211, PhyStandard::k80211b,
                                         PhyStandard::k80211a, PhyStandard::k80211g),
                       ::testing::Range<size_t>(0, 8)),
    [](const auto& info) {
      return ToString(std::get<0>(info.param)).substr(4) + "_mode" +
             std::to_string(std::get<1>(info.param));
    });

// --- Error model properties -----------------------------------------------------

class ErrorModelSweep : public ::testing::TestWithParam<std::tuple<PhyStandard, size_t>> {};

TEST_P(ErrorModelSweep, PerMonotoneInBothSnrAndLength) {
  const auto [standard, mode_idx] = GetParam();
  const auto modes = ModesFor(standard);
  if (mode_idx >= modes.size()) {
    GTEST_SKIP();
  }
  const WifiMode& mode = modes[mode_idx];
  DefaultErrorRateModel model;
  for (double snr_db = -4; snr_db <= 32; snr_db += 2) {
    const double snr = std::pow(10.0, snr_db / 10.0);
    double prev = 1.0;
    for (uint64_t bits : {80u, 800u, 8000u, 16000u}) {
      const double p = model.ChunkSuccessProbability(mode, snr, bits);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      EXPECT_LE(p, prev + 1e-12) << mode.name << " snr=" << snr_db << " bits=" << bits;
      prev = p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ErrorModelSweep,
    ::testing::Combine(::testing::Values(PhyStandard::k80211b, PhyStandard::k80211a),
                       ::testing::Range<size_t>(0, 8)),
    [](const auto& info) {
      return ToString(std::get<0>(info.param)).substr(4) + "_mode" +
             std::to_string(std::get<1>(info.param));
    });

// --- Frame codec fuzz -------------------------------------------------------------

TEST(FrameCodecFuzz, RandomHeadersAlwaysRoundTrip) {
  Rng rng(1234);
  for (int trial = 0; trial < 2000; ++trial) {
    MacHeader h;
    h.type = FrameType::kData;
    h.to_ds = rng.Chance(0.5);
    h.from_ds = rng.Chance(0.5);
    h.more_fragments = rng.Chance(0.5);
    h.retry = rng.Chance(0.5);
    h.power_mgmt = rng.Chance(0.5);
    h.more_data = rng.Chance(0.5);
    h.protected_frame = rng.Chance(0.5);
    h.duration_us = static_cast<uint16_t>(rng.UniformInt(0, 0x7FFF));
    h.addr1 = MacAddress::FromId(static_cast<uint32_t>(rng.UniformInt(0, 1 << 20)));
    h.addr2 = MacAddress::FromId(static_cast<uint32_t>(rng.UniformInt(0, 1 << 20)));
    h.addr3 = MacAddress::FromId(static_cast<uint32_t>(rng.UniformInt(0, 1 << 20)));
    h.sequence = static_cast<uint16_t>(rng.UniformInt(0, 4095));
    h.fragment = static_cast<uint8_t>(rng.UniformInt(0, 15));

    std::vector<uint8_t> body(static_cast<size_t>(rng.UniformInt(0, 2304)));
    for (auto& b : body) {
      b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    Packet mpdu = BuildMpdu(h, body);
    auto parsed = ParseMpdu(mpdu);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->duration_us, h.duration_us);
    EXPECT_EQ(parsed->addr1, h.addr1);
    EXPECT_EQ(parsed->addr2, h.addr2);
    EXPECT_EQ(parsed->addr3, h.addr3);
    EXPECT_EQ(parsed->sequence, h.sequence);
    EXPECT_EQ(parsed->fragment, h.fragment);
    EXPECT_EQ(mpdu.size(), body.size());
    EXPECT_TRUE(std::equal(body.begin(), body.end(), mpdu.bytes().begin()));
  }
}

TEST(FrameCodecFuzz, RandomBitFlipsAreAlwaysDetected) {
  // The FCS must catch every single-bit corruption (CRC-32 guarantees
  // detection of all 1-3 bit errors at these lengths).
  Rng rng(77);
  MacHeader h;
  h.type = FrameType::kData;
  h.addr1 = MacAddress::FromId(1);
  h.addr2 = MacAddress::FromId(2);
  h.addr3 = MacAddress::FromId(3);
  std::vector<uint8_t> body(500, 0xA5);
  for (int trial = 0; trial < 500; ++trial) {
    Packet mpdu = BuildMpdu(h, body);
    auto bytes = mpdu.mutable_bytes();
    const auto byte_idx = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
    const auto bit = static_cast<uint8_t>(1u << rng.UniformInt(0, 7));
    bytes[byte_idx] ^= bit;
    EXPECT_FALSE(ParseMpdu(mpdu).has_value()) << "undetected flip at byte " << byte_idx;
  }
}

// --- Cipher fuzz across suites ------------------------------------------------------

class CipherFuzz : public ::testing::TestWithParam<CipherSuite> {};

TEST_P(CipherFuzz, ThousandRandomRoundTrips) {
  const CipherSuite suite = GetParam();
  std::vector<uint8_t> key(suite == CipherSuite::kWep ? 13 : 16, 0x3C);
  auto tx = CreateCipher(suite, key);
  auto rx = CreateCipher(suite, key);
  FrameCryptoContext ctx;
  ctx.ta = MacAddress::FromId(5);
  ctx.da = MacAddress::FromId(6);
  ctx.sa = MacAddress::FromId(5);
  Rng rng(31337);
  for (int i = 0; i < 1000; ++i) {
    std::vector<uint8_t> body(static_cast<size_t>(rng.UniformInt(1, 2000)));
    for (auto& b : body) {
      b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    auto original = body;
    ctx.priority = static_cast<uint8_t>(rng.UniformInt(0, 7));
    tx->Protect(ctx, body);
    ASSERT_TRUE(rx->Unprotect(ctx, body)) << ToString(suite) << " packet " << i;
    ASSERT_EQ(body, original) << ToString(suite) << " packet " << i;
  }
}

TEST_P(CipherFuzz, RandomTamperAlwaysDetected) {
  const CipherSuite suite = GetParam();
  if (suite == CipherSuite::kOpen) {
    GTEST_SKIP() << "open has no integrity protection";
  }
  std::vector<uint8_t> key(suite == CipherSuite::kWep ? 13 : 16, 0x3C);
  auto tx = CreateCipher(suite, key);
  auto rx = CreateCipher(suite, key);
  FrameCryptoContext ctx;
  ctx.ta = MacAddress::FromId(5);
  ctx.da = MacAddress::FromId(6);
  ctx.sa = MacAddress::FromId(5);
  Rng rng(999);
  // Flips inside the integrity-protected region (ciphertext + MIC/ICV) must
  // always be detected. The cipher *header* (IV key-id byte, CCMP reserved
  // byte) is famously NOT integrity-protected — asserted separately below.
  const size_t protected_start = CipherHeaderBytes(suite);
  for (int i = 0; i < 300; ++i) {
    std::vector<uint8_t> body(128, 0x11);
    tx->Protect(ctx, body);
    const auto idx = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(protected_start),
                       static_cast<int64_t>(body.size()) - 1));
    body[idx] ^= static_cast<uint8_t>(1u << rng.UniformInt(0, 7));
    EXPECT_FALSE(rx->Unprotect(ctx, body)) << ToString(suite) << " flip at " << idx;
  }
}

TEST(CipherHeaderMalleability, WepKeyIdByteIsUnprotected) {
  // Historical accuracy check: the WEP ICV covers only the payload, so the
  // key-id byte of the 4-byte IV header is malleable — one of the protocol's
  // documented weaknesses.
  auto tx = CreateCipher(CipherSuite::kWep, std::vector<uint8_t>(13, 0x3C));
  auto rx = CreateCipher(CipherSuite::kWep, std::vector<uint8_t>(13, 0x3C));
  FrameCryptoContext ctx;
  std::vector<uint8_t> body(64, 0x22);
  const auto original = body;
  tx->Protect(ctx, body);
  body[3] ^= 0x01;  // key-id byte
  EXPECT_TRUE(rx->Unprotect(ctx, body));
  EXPECT_EQ(body, original);
}

INSTANTIATE_TEST_SUITE_P(AllSuites, CipherFuzz,
                         ::testing::Values(CipherSuite::kOpen, CipherSuite::kWep,
                                           CipherSuite::kTkip, CipherSuite::kCcmp),
                         [](const auto& info) { return ToString(info.param); });

}  // namespace
}  // namespace wlansim
