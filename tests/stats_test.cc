// Statistics pipeline tests: streaming summary, histogram quantiles, flow
// accounting, time series, and the table writer.

#include <gtest/gtest.h>

#include <cmath>

#include "core/packet.h"
#include "stats/flow_stats.h"
#include "stats/histogram.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "stats/time_series.h"

namespace wlansim {
namespace {

TEST(Summary, MomentsMatchClosedForm) {
  Summary s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  // Sample variance of 1..100 = 101*100/12 / ... = 841.666...
  EXPECT_NEAR(s.variance(), 841.6667, 0.001);
  EXPECT_DOUBLE_EQ(s.sum(), 5050.0);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.Add(42.0);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 10);  // [0, 100) in bins of 10
  h.Add(-5);
  h.Add(5);
  h.Add(15);
  h.Add(15);
  h.Add(95);
  h.Add(150);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, MedianOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.Add(i + 0.5);
  }
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.1), 10.0, 1.5);
}

TEST(Histogram, EmptyQuantileIsLowerBound) {
  Histogram h(5.0, 1.0, 10);
  EXPECT_EQ(h.Quantile(0.5), 5.0);
}

TEST(FlowStats, GoodputAndLoss) {
  FlowStats stats;
  // 10 packets of 1000 B sent over 1 s; 8 received.
  for (int i = 0; i < 10; ++i) {
    stats.RecordSent(1, 1000, Time::Millis(i * 100));
  }
  for (int i = 0; i < 8; ++i) {
    Packet p(1000);
    p.meta().flow_id = 1;
    p.meta().created = Time::Millis(i * 100);
    stats.RecordReceived(p, Time::Millis(i * 100 + 5));
  }
  const auto* flow = stats.Find(1);
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->tx_packets, 10u);
  EXPECT_EQ(flow->rx_packets, 8u);
  EXPECT_NEAR(stats.LossRate(1), 0.2, 1e-9);
  // 8000 B over [0, 705 ms] ≈ 90.8 kb/s.
  EXPECT_NEAR(stats.GoodputMbps(1), 8000.0 * 8 / 0.705 / 1e6, 0.001);
  EXPECT_NEAR(flow->delay_us.mean(), 5000.0, 1e-6);
}

TEST(FlowStats, JitterSmoothsTowardInterarrivalVariation) {
  FlowStats stats;
  stats.RecordSent(2, 100, Time::Zero());
  // Alternating 1 ms / 3 ms delays → |D| = 2 ms each step.
  for (int i = 0; i < 50; ++i) {
    Packet p(100);
    p.meta().flow_id = 2;
    p.meta().created = Time::Millis(i * 10);
    const Time delay = (i % 2 == 0) ? Time::Millis(1) : Time::Millis(3);
    stats.RecordReceived(p, Time::Millis(i * 10) + delay);
  }
  const auto* flow = stats.Find(2);
  ASSERT_NE(flow, nullptr);
  EXPECT_NEAR(flow->jitter_us, 2000.0, 100.0);
}

TEST(FlowStats, AggregateAcrossFlows) {
  FlowStats stats;
  for (uint32_t f = 1; f <= 3; ++f) {
    stats.RecordSent(f, 500, Time::Zero());
    Packet p(500);
    p.meta().flow_id = f;
    stats.RecordReceived(p, Time::Millis(100));
  }
  EXPECT_EQ(stats.TotalRxPackets(), 3u);
  EXPECT_EQ(stats.TotalRxBytes(), 1500u);
  EXPECT_EQ(stats.LossRate(), 0.0);
}

TEST(TimeSeries, BucketsAndRates) {
  TimeSeries ts(Time::Millis(100));
  ts.Add(Time::Millis(50), 1000);   // bucket 0
  ts.Add(Time::Millis(150), 2000);  // bucket 1
  ts.Add(Time::Millis(199), 500);   // bucket 1
  ASSERT_EQ(ts.buckets().size(), 2u);
  EXPECT_EQ(ts.buckets()[0].sum, 1000);
  EXPECT_EQ(ts.buckets()[1].sum, 2500);
  EXPECT_EQ(ts.buckets()[1].count, 2u);
  const auto rates = ts.RatePerSecond();
  EXPECT_NEAR(rates[1], 25000.0, 1e-9);
}

TEST(TimeSeries, FillsEmptyBuckets) {
  TimeSeries ts(Time::Millis(10));
  ts.Add(Time::Millis(45), 1);
  ASSERT_EQ(ts.buckets().size(), 5u);
  EXPECT_EQ(ts.buckets()[2].count, 0u);
}

TEST(Table, AlignedRendering) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22.5"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.AddRow({"x,y", "say \"hi\""});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(10.0, 0), "10");
}

}  // namespace
}  // namespace wlansim
