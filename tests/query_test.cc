// Query subsystem tests: catalog registration (collections, schema union,
// drift/corruption rejection), extent-cache accounting and bitwise column
// fidelity, and the differential contract at the heart of invariant #8 —
// every served answer is byte-identical to the offline `wlansim_results
// aggregate` path and independent of registration order, cache state,
// worker-thread count and repetition.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "query/catalog.h"
#include "query/engine.h"
#include "query/extent_cache.h"
#include "query/protocol.h"
#include "query/server.h"
#include "results/binary_reader.h"
#include "results/binary_writer.h"
#include "runner/campaign.h"
#include "runner/metric_recorder.h"
#include "runner/result_consumer.h"
#include "runner/result_sink.h"
#include "runner/sweep.h"

namespace wlansim {
namespace {

// --- fixtures -------------------------------------------------------------------

std::string WriteTempFile(const std::string& name, const std::string& bytes) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  EXPECT_TRUE(out.good()) << path;
  return path;
}

// One shard of the pipeline_probe sweep grid (n_metrics sweeps the metric
// set itself, exercising the per-point schema union).
std::string SweepShardBytes(unsigned shard_index, unsigned shard_count) {
  std::ostringstream bin;
  BinarySweepWriter writer(bin);
  SweepOptions options;
  options.scenario = "pipeline_probe";
  options.grid.AddAxis(ParseSweepAxis("n_metrics=1,2,3"));
  options.grid.AddAxis(ParseSweepAxis("samples=8,32"));
  options.base_seed = 5;
  options.replications = 6;
  options.jobs = 2;
  options.shard_index = shard_index;
  options.shard_count = shard_count;
  options.point_sinks.push_back(&writer);
  RunSweepCampaign(options);
  return bin.str();
}

std::string CampaignBytes(uint64_t seed, const char* counters = "3") {
  std::ostringstream bin;
  BinaryCampaignWriter writer(bin, /*streamed=*/false);
  CampaignOptions options;
  options.scenario = "pipeline_probe";
  options.base_seed = seed;
  options.replications = 16;
  options.jobs = 2;
  options.params.Set("counters", counters);
  options.params.Set("hist", "true");
  options.consumers.push_back(&writer);
  RunCampaign(options);
  return bin.str();
}

struct SweepFixture {
  std::string path0;
  std::string path1;
  Catalog catalog;

  SweepFixture() {
    path0 = WriteTempFile("query_sweep_s0.wlsr", SweepShardBytes(0, 2));
    path1 = WriteTempFile("query_sweep_s1.wlsr", SweepShardBytes(1, 2));
    catalog.RegisterFile(path0);
    catalog.RegisterFile(path1);
  }

  // The offline answer over the same files, in the catalog's canonical
  // (sorted-path) order.
  std::string Offline() const {
    const BinaryResultsFile f0 = ReadBinaryResultsFile(path0);
    const BinaryResultsFile f1 = ReadBinaryResultsFile(path1);
    return AggregateBinary(std::vector<const BinaryResultsFile*>{&f0, &f1});
  }
};

std::string RunQuery(const Catalog& catalog, const std::string& query,
                     size_t cache_bytes = 64u << 20) {
  ExtentCache cache(cache_bytes);
  QueryEngine engine(&catalog, &cache);
  return engine.Execute(query);
}

// --- catalog --------------------------------------------------------------------

TEST(QueryCatalog, ShardsPoolIntoOneCollectionWithUnionSchema) {
  SweepFixture fx;
  EXPECT_EQ(fx.catalog.CollectionNames(),
            std::vector<std::string>{"pipeline_probe:sweep"});
  const Collection* c = fx.catalog.Find("pipeline_probe:sweep");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, BinaryFileKind::kSweep);
  EXPECT_EQ(c->param_keys, (std::vector<std::string>{"n_metrics", "samples"}));
  EXPECT_EQ(c->points.size(), 6u);      // full 3x2 grid across the two shards
  EXPECT_EQ(c->total_rows, 36u);        // 6 points x 6 replications
  // n_metrics=3 points carry value_2; n_metrics=1 points do not — the
  // collection schema is the union.
  const std::vector<std::string>& names = c->scalar_names;
  EXPECT_NE(std::find(names.begin(), names.end(), "value_0"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "value_2"), names.end());
  // Member files are sorted by path regardless of registration order.
  Catalog reversed;
  reversed.RegisterFile(fx.path1);
  reversed.RegisterFile(fx.path0);
  const Collection* r = reversed.Find("pipeline_probe:sweep");
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->files.size(), 2u);
  EXPECT_EQ(r->files[0]->path, fx.path0);
  EXPECT_EQ(r->files[1]->path, fx.path1);
}

TEST(QueryCatalog, RejectsCorruptTruncatedForeignAndDuplicateFiles) {
  const std::string good = CampaignBytes(99);
  Catalog catalog;

  const std::string truncated =
      WriteTempFile("query_truncated.wlsr", good.substr(0, good.size() / 2));
  EXPECT_THROW(catalog.RegisterFile(truncated), std::runtime_error);

  std::string flipped = good;
  flipped[good.size() / 2] ^= 0x40;  // CRC must catch a mid-body bit flip
  const std::string corrupt = WriteTempFile("query_corrupt.wlsr", flipped);
  EXPECT_THROW(catalog.RegisterFile(corrupt), std::runtime_error);

  const std::string foreign =
      WriteTempFile("query_foreign.wlsr", "metric,count,mean\nx,3,1.5\n");
  EXPECT_THROW(catalog.RegisterFile(foreign), std::runtime_error);

  EXPECT_THROW(catalog.RegisterFile(testing::TempDir() + "query_absent.wlsr"),
               std::runtime_error);

  // Failed registrations leave no trace: no files, no half-built collection.
  EXPECT_EQ(catalog.file_count(), 0u);
  EXPECT_TRUE(catalog.CollectionNames().empty());

  const std::string ok = WriteTempFile("query_dup.wlsr", good);
  catalog.RegisterFile(ok);
  EXPECT_THROW(catalog.RegisterFile(ok), std::runtime_error);  // duplicate path
  EXPECT_EQ(catalog.file_count(), 1u);
}

TEST(QueryCatalog, RejectsCampaignSchemaDriftDuplicatePointsAndAxisMismatch) {
  Catalog catalog;
  catalog.RegisterFile(WriteTempFile("query_drift_a.wlsr", CampaignBytes(1, "3")));
  // Same scenario, different counter count => different scalar column set:
  // pooling it would silently poison the campaign sample set.
  const std::string drifted =
      WriteTempFile("query_drift_b.wlsr", CampaignBytes(2, "1"));
  EXPECT_THROW(catalog.RegisterFile(drifted), std::runtime_error);

  // A sweep shard re-registered under a new path re-supplies its grid points.
  Catalog sweep_catalog;
  const std::string bytes = SweepShardBytes(0, 2);
  sweep_catalog.RegisterFile(WriteTempFile("query_point_a.wlsr", bytes));
  const std::string dup_points = WriteTempFile("query_point_b.wlsr", bytes);
  EXPECT_THROW(sweep_catalog.RegisterFile(dup_points), std::runtime_error);

  // A file swept over different axes cannot join the collection.
  std::ostringstream bin;
  BinarySweepWriter writer(bin);
  SweepOptions options;
  options.scenario = "pipeline_probe";
  options.grid.AddAxis(ParseSweepAxis("samples=4,16"));
  options.base_seed = 5;
  options.replications = 2;
  options.jobs = 1;
  options.point_sinks.push_back(&writer);
  RunSweepCampaign(options);
  const std::string other_axes = WriteTempFile("query_axes.wlsr", bin.str());
  EXPECT_THROW(sweep_catalog.RegisterFile(other_axes), std::runtime_error);
}

TEST(QueryCatalog, RegisterDirectoryPicksUpWlsrFilesSorted) {
  const std::string dir = testing::TempDir() + "query_dir";
  std::filesystem::create_directory(dir);
  std::ofstream(dir + "/b.wlsr", std::ios::binary) << SweepShardBytes(1, 2);
  std::ofstream(dir + "/a.wlsr", std::ios::binary) << SweepShardBytes(0, 2);
  std::ofstream(dir + "/notes.txt") << "ignored";
  Catalog catalog;
  EXPECT_EQ(catalog.RegisterDirectory(dir), 2u);
  const Collection* c = catalog.Find("pipeline_probe:sweep");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->points.size(), 6u);
}

// --- differential contract: served == offline, invariant #8 ---------------------

TEST(QueryEngine, SweepAggregateIsByteIdenticalToOfflineAggregate) {
  SweepFixture fx;
  const std::string offline = fx.Offline();
  ASSERT_FALSE(offline.empty());
  EXPECT_EQ(RunQuery(fx.catalog, "AGGREGATE pipeline_probe:sweep"), offline);
  // SELECT * with the default grouping (every axis) is the same answer.
  EXPECT_EQ(RunQuery(fx.catalog, "SELECT * FROM pipeline_probe:sweep"), offline);
}

TEST(QueryEngine, CampaignAggregatePoolsFilesLikeOfflineAggregate) {
  const std::string path_a = WriteTempFile("query_camp_a.wlsr", CampaignBytes(7));
  const std::string path_b = WriteTempFile("query_camp_b.wlsr", CampaignBytes(8));
  Catalog catalog;
  catalog.RegisterFile(path_b);  // registration order != path order
  catalog.RegisterFile(path_a);
  const BinaryResultsFile fa = ReadBinaryResultsFile(path_a);
  const BinaryResultsFile fb = ReadBinaryResultsFile(path_b);
  // The catalog pools in sorted-path order; hand the offline path the same
  // order (Welford folds are order-dependent, so this is part of the
  // contract, not a convenience).
  EXPECT_EQ(RunQuery(catalog, "AGGREGATE pipeline_probe:campaign"),
            AggregateBinary(std::vector<const BinaryResultsFile*>{&fa, &fb}));
}

TEST(QueryEngine, AnswerIndependentOfRegistrationOrderCacheStateAndRepetition) {
  SweepFixture fx;
  Catalog reversed;
  reversed.RegisterFile(fx.path1);
  reversed.RegisterFile(fx.path0);

  const std::string query = "SELECT value_0 FROM pipeline_probe:sweep WHERE n_metrics=2";
  const std::string baseline = RunQuery(fx.catalog, query);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(RunQuery(reversed, query), baseline);

  // A 1-byte budget forces a miss+eviction on every column; a warm repeat
  // on a big cache hits every column. All three answers must be the bytes.
  EXPECT_EQ(RunQuery(fx.catalog, query, /*cache_bytes=*/1), baseline);
  ExtentCache cache(64u << 20);
  QueryEngine engine(&fx.catalog, &cache);
  EXPECT_EQ(engine.Execute(query), baseline);
  EXPECT_EQ(engine.Execute(query), baseline);  // warm repeat
  cache.Clear();
  EXPECT_EQ(engine.Execute(query), baseline);  // cold again
}

TEST(QueryEngine, WhereAndGroupByMatchManualPerPointAggregation) {
  SweepFixture fx;
  const Collection* c = fx.catalog.Find("pipeline_probe:sweep");
  ASSERT_NE(c, nullptr);

  // WHERE n_metrics=2 with the default grouping: one row set per matching
  // grid point, ascending, each aggregated exactly like the offline path.
  std::string expected = ResultSink::SweepLongCsvHeader(c->param_keys, /*approx=*/false);
  for (const auto& [point, ref] : c->points) {
    const BinaryGroupHeader& h = ref.group().header;
    if (h.param_values[0] != "2") {
      continue;
    }
    size_t column = 0;
    while (h.scalar_names[column] != "value_0") {
      ++column;
    }
    std::vector<double> values;
    ReadScalarColumn(ref.group(), column, &values);
    expected += ResultSink::SweepLongCsvRows(
        h.param_values, {AggregateScalarSamples("value_0", values)});
  }
  EXPECT_EQ(
      RunQuery(fx.catalog, "SELECT value_0 FROM pipeline_probe:sweep WHERE n_metrics=2"),
      expected);

  // GROUP BY samples pools the three n_metrics points of each samples
  // value, ascending point index within the bucket.
  std::map<std::string, std::vector<double>> buckets;
  for (const auto& [point, ref] : c->points) {
    const BinaryGroupHeader& h = ref.group().header;
    size_t column = 0;
    while (h.scalar_names[column] != "value_0") {
      ++column;
    }
    std::vector<double> values;
    ReadScalarColumn(ref.group(), column, &values);
    auto& pool = buckets[h.param_values[1]];
    pool.insert(pool.end(), values.begin(), values.end());
  }
  std::string grouped = ResultSink::SweepLongCsvHeader({"samples"}, /*approx=*/false);
  for (const char* samples : {"8", "32"}) {  // first-appearance order: point 0 has samples=8
    grouped += ResultSink::SweepLongCsvRows(
        {samples}, {AggregateScalarSamples("value_0", buckets.at(samples))});
  }
  EXPECT_EQ(RunQuery(fx.catalog,
                     "SELECT value_0 FROM pipeline_probe:sweep GROUP BY samples"),
            grouped);
}

TEST(QueryEngine, HistMergesDistColumnsAcrossFilesExactly) {
  const std::string path_a = WriteTempFile("query_hist_a.wlsr", CampaignBytes(7));
  const std::string path_b = WriteTempFile("query_hist_b.wlsr", CampaignBytes(8));
  Catalog catalog;
  catalog.RegisterFile(path_a);
  catalog.RegisterFile(path_b);

  // Fold the snapshots by hand, straight off the files.
  uint64_t total = 0, underflow = 0, overflow = 0;
  std::vector<uint64_t> bins;
  for (const std::string& path : {path_a, path_b}) {
    const BinaryResultsFile file = ReadBinaryResultsFile(path);
    for (const BinaryGroup& group : file.groups) {
      size_t dist = 0;
      while (group.header.dist_names[dist] != "latency_hist") {
        ++dist;
      }
      std::vector<DistributionSnapshot> snaps;
      ReadDistColumn(group, dist, &snaps);
      for (const DistributionSnapshot& s : snaps) {
        total += s.total;
        underflow += s.underflow;
        overflow += s.overflow;
        bins.resize(std::max(bins.size(), s.bins.size()), 0);
        for (size_t i = 0; i < s.bins.size(); ++i) {
          bins[i] += s.bins[i];
        }
      }
    }
  }
  ASSERT_GT(total, 0u);

  const std::string body =
      RunQuery(catalog, "HIST pipeline_probe:campaign latency_hist");
  std::istringstream lines(body);
  std::string summary;
  ASSERT_TRUE(std::getline(lines, summary));
  EXPECT_NE(summary.find("count=" + std::to_string(total)), std::string::npos) << summary;
  EXPECT_NE(summary.find("underflow=" + std::to_string(underflow)), std::string::npos);
  EXPECT_NE(summary.find("overflow=" + std::to_string(overflow)), std::string::npos);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header, "bin,lo,count");
  // Every non-zero bin appears with its exact merged count, in order.
  uint64_t binned = 0;
  std::string row;
  while (std::getline(lines, row)) {
    const size_t first = row.find(',');
    const size_t last = row.rfind(',');
    ASSERT_NE(first, std::string::npos);
    const size_t bin = std::stoul(row.substr(0, first));
    const uint64_t count = std::stoull(row.substr(last + 1));
    ASSERT_LT(bin, bins.size());
    EXPECT_EQ(count, bins[bin]) << "bin " << bin;
    binned += count;
  }
  EXPECT_EQ(binned, total - underflow - overflow);
}

TEST(QueryEngine, RejectsBadQueriesWithUsefulErrors) {
  SweepFixture fx;
  EXPECT_THROW(RunQuery(fx.catalog, "AGGREGATE nope:sweep"), std::runtime_error);
  EXPECT_THROW(RunQuery(fx.catalog, "FROB pipeline_probe:sweep"), std::runtime_error);
  EXPECT_THROW(RunQuery(fx.catalog, "SELECT bogus FROM pipeline_probe:sweep"),
               std::runtime_error);
  EXPECT_THROW(
      RunQuery(fx.catalog, "SELECT value_0 FROM pipeline_probe:sweep WHERE nope=1"),
      std::runtime_error);
  // value_2 exists only at n_metrics=3 points: pooling it across the grid
  // must fail loudly, not zero-fill.
  EXPECT_THROW(RunQuery(fx.catalog, "SELECT value_2 FROM pipeline_probe:sweep"),
               std::runtime_error);
  // ...but restricted to the points that have it, it works.
  EXPECT_FALSE(
      RunQuery(fx.catalog, "SELECT value_2 FROM pipeline_probe:sweep WHERE n_metrics=3")
          .empty());
  // no matching grid points
  EXPECT_THROW(
      RunQuery(fx.catalog, "SELECT value_0 FROM pipeline_probe:sweep WHERE n_metrics=9"),
      std::runtime_error);
  // Metrics split across tokens need commas; bare "a b" must be a syntax
  // error about the missing comma, not a lookup for a fused metric "ab".
  try {
    RunQuery(fx.catalog, "SELECT value_0 value_1 FROM pipeline_probe:sweep");
    FAIL() << "space-separated metric list was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("comma"), std::string::npos) << e.what();
  }
  // ...while a comma-joined list split across tokens stays legal.
  EXPECT_FALSE(
      RunQuery(fx.catalog, "SELECT value_0, value_1 FROM pipeline_probe:sweep WHERE n_metrics=3")
          .empty());
}

// --- extent cache ---------------------------------------------------------------

TEST(ExtentCache, CountsHitsMissesEvictionsAndHonoursByteBudget) {
  SweepFixture fx;
  const Collection* c = fx.catalog.Find("pipeline_probe:sweep");
  ASSERT_NE(c, nullptr);
  const std::vector<GroupRef> groups = c->GroupsInOrder();
  ASSERT_EQ(groups.size(), 6u);

  // Budget of one column (6 rows): every distinct fetch evicts the last.
  ExtentCache small(6 * sizeof(double));
  for (const GroupRef& ref : groups) {
    small.GetScalarColumn(ref, 0);
  }
  ExtentCacheStats s = small.Stats();
  EXPECT_EQ(s.lookups, 6u);
  EXPECT_EQ(s.misses, 6u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.evictions, 5u);
  EXPECT_LE(s.cached_bytes, small.byte_budget());
  EXPECT_EQ(s.cached_columns, 1u);
  // Warm repeat of the resident column is a hit; a column larger than the
  // whole budget is served but not retained.
  small.GetScalarColumn(groups.back(), 0);
  EXPECT_EQ(small.Stats().hits, 1u);
  ExtentCache tiny(1);
  const ColumnPtr served = tiny.GetScalarColumn(groups[0], 0);
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served->size(), 6u);
  EXPECT_EQ(tiny.Stats().cached_columns, 0u);
  EXPECT_EQ(tiny.Stats().cached_bytes, 0u);
}

TEST(ExtentCache, NanAndNegativeZeroSurviveTheCachedPathBitwise) {
  // Hand-built campaign whose column holds every bit pattern the codec must
  // not normalize: NaN, -0.0, denormals, infinities.
  const double hard[] = {std::numeric_limits<double>::quiet_NaN(),
                         -0.0,
                         0.0,
                         std::numeric_limits<double>::denorm_min(),
                         -std::numeric_limits<double>::infinity(),
                         1.0e300};
  std::ostringstream bin;
  BinaryCampaignWriter writer(bin, /*streamed=*/false);
  writer.BeginCampaign({"hard_values", 1, 6});
  for (uint64_t rep = 0; rep < 6; ++rep) {
    ReplicationRecord record;
    record.replication = rep;
    record.metrics["x"] = hard[rep];
    writer.OnRecord(record);
  }
  writer.EndCampaign();

  Catalog catalog;
  catalog.RegisterFile(WriteTempFile("query_hard.wlsr", bin.str()));
  const Collection* c = catalog.Find("hard_values:campaign");
  ASSERT_NE(c, nullptr);
  ExtentCache cache(64u << 20);
  for (int pass = 0; pass < 2; ++pass) {  // pass 0 decodes, pass 1 hits
    const ColumnPtr col = cache.GetScalarColumn(c->GroupsInOrder()[0], 0);
    ASSERT_EQ(col->size(), 6u);
    for (size_t i = 0; i < 6; ++i) {
      EXPECT_EQ(std::memcmp(&(*col)[i], &hard[i], sizeof(double)), 0)
          << "pass " << pass << " row " << i;
    }
  }
  EXPECT_EQ(cache.Stats().hits, 1u);
}

// --- server ---------------------------------------------------------------------

std::string RoundTrip(int fd, const std::string& query, uint8_t* status) {
  WriteFrame(fd, query);
  std::string payload;
  EXPECT_TRUE(ReadFrame(fd, &payload));
  std::string body;
  *status = DecodeResponse(payload, &body);
  return body;
}

int ConnectTo(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  EXPECT_LT(socket_path.size(), sizeof(addr.sun_path));
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0)
      << socket_path;
  return fd;
}

TEST(QueryServer, ServesOfflineIdenticalBytesAcrossThreadCountsAndConnections) {
  SweepFixture fx;
  const std::string offline = fx.Offline();

  Catalog reversed;
  reversed.RegisterFile(fx.path1);
  reversed.RegisterFile(fx.path0);

  const struct {
    const Catalog* catalog;
    int threads;
    const char* socket_name;
  } configs[] = {{&fx.catalog, 1, "query_t1.sock"}, {&reversed, 8, "query_t8.sock"}};
  for (const auto& config : configs) {
    QueryServerOptions options;
    options.socket_path = testing::TempDir() + config.socket_name;
    options.threads = config.threads;
    QueryServer server(config.catalog, options);
    server.Start();

    const int fd = ConnectTo(options.socket_path);
    uint8_t status = kStatusError;
    EXPECT_EQ(RoundTrip(fd, "AGGREGATE pipeline_probe:sweep", &status), offline);
    EXPECT_EQ(status, kStatusOk);
    // A failed query reports on the same connection without ending it.
    const std::string error = RoundTrip(fd, "FROB everything", &status);
    EXPECT_EQ(status, kStatusError);
    EXPECT_FALSE(error.empty());
    // Warm repeat (cache now populated) still serves the same bytes.
    EXPECT_EQ(RoundTrip(fd, "AGGREGATE pipeline_probe:sweep", &status), offline);
    EXPECT_EQ(status, kStatusOk);
    const std::string stats = RoundTrip(fd, "STATS", &status);
    EXPECT_EQ(status, kStatusOk);
    EXPECT_NE(stats.find("served="), std::string::npos);
    EXPECT_NE(stats.find("cache lookups="), std::string::npos);
    EXPECT_NE(stats.find("latency AGGREGATE"), std::string::npos);
    ::close(fd);

    // A second connection is served by a (possibly) different worker.
    const int fd2 = ConnectTo(options.socket_path);
    EXPECT_EQ(RoundTrip(fd2, "AGGREGATE pipeline_probe:sweep", &status), offline);
    EXPECT_EQ(status, kStatusOk);
    ::close(fd2);

    server.Stop();
    EXPECT_GE(server.queries_served(), 5u);
  }
}

}  // namespace
}  // namespace wlansim
