// Crypto substrate tests: published vectors (CRC-32, RC4, AES FIPS-197,
// Michael 802.11i), CCM properties, TKIP mixing properties, and full
// cipher-suite round trips with tamper detection.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>

#include "core/random.h"
#include "crypto/aes.h"
#include "crypto/ccm.h"
#include "crypto/cipher_suite.h"
#include "crypto/crc32.h"
#include "crypto/michael.h"
#include "crypto/rc4.h"
#include "crypto/tkip.h"

namespace wlansim {
namespace {

std::vector<uint8_t> Bytes(std::initializer_list<int> list) {
  std::vector<uint8_t> v;
  for (int x : list) {
    v.push_back(static_cast<uint8_t>(x));
  }
  return v;
}

std::vector<uint8_t> FromHex(const char* hex) {
  std::vector<uint8_t> out;
  for (size_t i = 0; hex[i] != 0 && hex[i + 1] != 0; i += 2) {
    auto nib = [](char c) -> uint8_t {
      if (c >= '0' && c <= '9') return static_cast<uint8_t>(c - '0');
      if (c >= 'a' && c <= 'f') return static_cast<uint8_t>(c - 'a' + 10);
      return static_cast<uint8_t>(c - 'A' + 10);
    };
    out.push_back(static_cast<uint8_t>((nib(hex[i]) << 4) | nib(hex[i + 1])));
  }
  return out;
}

// --- CRC-32 -------------------------------------------------------------------

TEST(Crc32, StandardCheckValue) {
  // The canonical CRC-32 check: CRC("123456789") = 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(Crc32(std::span(reinterpret_cast<const uint8_t*>(s), 9)), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(Crc32({}), 0x00000000u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  std::vector<uint8_t> data(1024);
  std::iota(data.begin(), data.end(), 0);
  Crc32Builder b;
  b.Update(std::span(data.data(), 100));
  b.Update(std::span(data.data() + 100, 924));
  EXPECT_EQ(b.Finalize(), Crc32(data));
}

TEST(Crc32, SingleBitFlipChangesValue) {
  std::vector<uint8_t> data(64, 0x55);
  const uint32_t base = Crc32(data);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(Crc32(data), base) << "flip at byte " << i;
    data[i] ^= 0x01;
  }
}

// --- RC4 ----------------------------------------------------------------------

TEST(Rc4, WikipediaVectorKey) {
  // RC4("Key", "Plaintext") = BBF316E8D940AF0AD3.
  const char* key = "Key";
  std::vector<uint8_t> data(reinterpret_cast<const uint8_t*>("Plaintext"),
                            reinterpret_cast<const uint8_t*>("Plaintext") + 9);
  Rc4 rc4(std::span(reinterpret_cast<const uint8_t*>(key), 3));
  rc4.Process(data);
  EXPECT_EQ(data, FromHex("BBF316E8D940AF0AD3"));
}

TEST(Rc4, WikipediaVectorWiki) {
  // RC4("Wiki", "pedia") = 1021BF0420.
  const char* key = "Wiki";
  std::vector<uint8_t> data(reinterpret_cast<const uint8_t*>("pedia"),
                            reinterpret_cast<const uint8_t*>("pedia") + 5);
  Rc4 rc4(std::span(reinterpret_cast<const uint8_t*>(key), 4));
  rc4.Process(data);
  EXPECT_EQ(data, FromHex("1021BF0420"));
}

TEST(Rc4, WikipediaVectorSecret) {
  // RC4("Secret", "Attack at dawn") = 45A01F645FC35B383552544B9BF5.
  const char* key = "Secret";
  const char* pt = "Attack at dawn";
  std::vector<uint8_t> data(reinterpret_cast<const uint8_t*>(pt),
                            reinterpret_cast<const uint8_t*>(pt) + 14);
  Rc4 rc4(std::span(reinterpret_cast<const uint8_t*>(key), 6));
  rc4.Process(data);
  EXPECT_EQ(data, FromHex("45A01F645FC35B383552544B9BF5"));
}

TEST(Rc4, EncryptDecryptRoundTrip) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint8_t> key(static_cast<size_t>(rng.UniformInt(1, 32)));
    for (auto& b : key) {
      b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    std::vector<uint8_t> data(static_cast<size_t>(rng.UniformInt(0, 500)));
    for (auto& b : data) {
      b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    auto original = data;
    Rc4(key).Process(data);
    Rc4(key).Process(data);
    EXPECT_EQ(data, original);
  }
}

// --- AES-128 ------------------------------------------------------------------

TEST(Aes128, Fips197Vector) {
  const auto key = FromHex("000102030405060708090a0b0c0d0e0f");
  const auto pt = FromHex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  Aes128 aes(std::span<const uint8_t, 16>(key.data(), 16));
  aes.EncryptBlock(std::span<const uint8_t, 16>(pt.data(), 16), std::span<uint8_t, 16>(ct, 16));
  EXPECT_EQ(std::vector<uint8_t>(ct, ct + 16), FromHex("69c4e0d86a7b0430d8cdb78070b4c55a"));
}

TEST(Aes128, Sp800_38aEcbVector) {
  const auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  const auto pt = FromHex("6bc1bee22e409f96e93d7e117393172a");
  uint8_t ct[16];
  Aes128 aes(std::span<const uint8_t, 16>(key.data(), 16));
  aes.EncryptBlock(std::span<const uint8_t, 16>(pt.data(), 16), std::span<uint8_t, 16>(ct, 16));
  EXPECT_EQ(std::vector<uint8_t>(ct, ct + 16), FromHex("3ad77bb40d7a3660a89ecaf32466ef97"));
}

TEST(Aes128, InPlaceAliasingWorks) {
  const auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  auto block = FromHex("6bc1bee22e409f96e93d7e117393172a");
  Aes128 aes(std::span<const uint8_t, 16>(key.data(), 16));
  aes.EncryptBlock(std::span<const uint8_t, 16>(block.data(), 16),
                   std::span<uint8_t, 16>(block.data(), 16));
  EXPECT_EQ(block, FromHex("3ad77bb40d7a3660a89ecaf32466ef97"));
}

TEST(Aes128, DifferentKeysDifferentCiphertexts) {
  const auto pt = FromHex("00000000000000000000000000000000");
  auto key1 = FromHex("00000000000000000000000000000000");
  auto key2 = FromHex("00000000000000000000000000000001");
  uint8_t ct1[16];
  uint8_t ct2[16];
  Aes128(std::span<const uint8_t, 16>(key1.data(), 16))
      .EncryptBlock(std::span<const uint8_t, 16>(pt.data(), 16), std::span<uint8_t, 16>(ct1, 16));
  Aes128(std::span<const uint8_t, 16>(key2.data(), 16))
      .EncryptBlock(std::span<const uint8_t, 16>(pt.data(), 16), std::span<uint8_t, 16>(ct2, 16));
  EXPECT_NE(std::memcmp(ct1, ct2, 16), 0);
}

// --- Michael ------------------------------------------------------------------

// The IEEE 802.11i Annex chained test vectors: each MIC is the key for the
// next message.
TEST(Michael, ChainedStandardVectors) {
  struct Step {
    const char* message;
    const char* mic_hex;
  };
  const Step steps[] = {
      {"", "82925c1ca1d130b8"},        {"M", "434721ca40639b3f"},
      {"Mi", "e8f9becae97e5d29"},      {"Mic", "90038fc6cf13c1db"},
      {"Mich", "d55e100510128986"},    {"Michael", "0a942b124ecaa546"},
  };
  std::vector<uint8_t> key(8, 0);
  for (const Step& step : steps) {
    const auto mic = Michael::Compute(
        std::span<const uint8_t, 8>(key.data(), 8),
        std::span(reinterpret_cast<const uint8_t*>(step.message), std::strlen(step.message)));
    EXPECT_EQ(std::vector<uint8_t>(mic.begin(), mic.end()), FromHex(step.mic_hex))
        << "message '" << step.message << "'";
    key.assign(mic.begin(), mic.end());
  }
}

TEST(Michael, MsduHeaderBindsAddresses) {
  std::vector<uint8_t> key(8, 0x11);
  std::vector<uint8_t> payload(32, 0x22);
  const auto mic1 = Michael::ComputeForMsdu(std::span<const uint8_t, 8>(key.data(), 8),
                                            MacAddress::FromId(1), MacAddress::FromId(2), 0,
                                            payload);
  const auto mic2 = Michael::ComputeForMsdu(std::span<const uint8_t, 8>(key.data(), 8),
                                            MacAddress::FromId(3), MacAddress::FromId(2), 0,
                                            payload);
  EXPECT_NE(mic1, mic2);
}

// --- CCM ----------------------------------------------------------------------

TEST(Ccm, Rfc3610Vector1) {
  // RFC 3610 packet vector #1: M=8, L=2.
  const auto key = FromHex("C0C1C2C3C4C5C6C7C8C9CACBCCCDCECF");
  const auto nonce = FromHex("00000003020100A0A1A2A3A4A5");
  const auto aad = FromHex("0001020304050607");
  auto payload = FromHex("08090A0B0C0D0E0F101112131415161718191A1B1C1D1E");
  Ccm ccm(std::span<const uint8_t, 16>(key.data(), 16), 8, 2);
  const auto mic = ccm.Encrypt(nonce, aad, payload);
  EXPECT_EQ(payload, FromHex("588C979A61C663D2F066D0C2C0F989806D5F6B61DAC384"));
  EXPECT_EQ(mic, FromHex("17E8D12CFDF926E0"));
}

TEST(Ccm, Rfc3610Vector1Decrypts) {
  const auto key = FromHex("C0C1C2C3C4C5C6C7C8C9CACBCCCDCECF");
  const auto nonce = FromHex("00000003020100A0A1A2A3A4A5");
  const auto aad = FromHex("0001020304050607");
  auto payload = FromHex("588C979A61C663D2F066D0C2C0F989806D5F6B61DAC384");
  const auto mic = FromHex("17E8D12CFDF926E0");
  Ccm ccm(std::span<const uint8_t, 16>(key.data(), 16), 8, 2);
  EXPECT_TRUE(ccm.Decrypt(nonce, aad, payload, mic));
  EXPECT_EQ(payload, FromHex("08090A0B0C0D0E0F101112131415161718191A1B1C1D1E"));
}

TEST(Ccm, TamperedCiphertextFailsMic) {
  const auto key = FromHex("C0C1C2C3C4C5C6C7C8C9CACBCCCDCECF");
  const auto nonce = FromHex("00000003020100A0A1A2A3A4A5");
  const auto aad = FromHex("0001020304050607");
  auto payload = FromHex("588C979A61C663D2F066D0C2C0F989806D5F6B61DAC384");
  auto mic = FromHex("17E8D12CFDF926E0");
  payload[5] ^= 0x80;
  Ccm ccm(std::span<const uint8_t, 16>(key.data(), 16), 8, 2);
  EXPECT_FALSE(ccm.Decrypt(nonce, aad, payload, mic));
}

TEST(Ccm, TamperedAadFailsMic) {
  const auto key = FromHex("C0C1C2C3C4C5C6C7C8C9CACBCCCDCECF");
  const auto nonce = FromHex("00000003020100A0A1A2A3A4A5");
  auto aad = FromHex("0001020304050607");
  auto payload = FromHex("588C979A61C663D2F066D0C2C0F989806D5F6B61DAC384");
  auto mic = FromHex("17E8D12CFDF926E0");
  aad[0] ^= 0x01;
  Ccm ccm(std::span<const uint8_t, 16>(key.data(), 16), 8, 2);
  EXPECT_FALSE(ccm.Decrypt(nonce, aad, payload, mic));
}

TEST(Ccm, RoundTripRandomPayloads) {
  Rng rng(99);
  std::vector<uint8_t> key(16);
  for (auto& b : key) {
    b = static_cast<uint8_t>(rng.UniformInt(0, 255));
  }
  Ccm ccm(std::span<const uint8_t, 16>(key.data(), 16), 8, 2);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<uint8_t> nonce(13);
    for (auto& b : nonce) {
      b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    std::vector<uint8_t> aad(static_cast<size_t>(rng.UniformInt(0, 30)));
    for (auto& b : aad) {
      b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    std::vector<uint8_t> payload(static_cast<size_t>(rng.UniformInt(0, 300)));
    for (auto& b : payload) {
      b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    auto original = payload;
    auto mic = ccm.Encrypt(nonce, aad, payload);
    if (!original.empty()) {
      EXPECT_NE(payload, original);
    }
    EXPECT_TRUE(ccm.Decrypt(nonce, aad, payload, mic));
    EXPECT_EQ(payload, original);
  }
}

// --- TKIP mixing --------------------------------------------------------------

TEST(TkipMixer, DeterministicAndIvSensitive) {
  std::vector<uint8_t> tk(16, 0x5c);
  const MacAddress ta = MacAddress::FromId(7);
  const auto ttak1 = TkipMixer::Phase1(std::span<const uint8_t, 16>(tk.data(), 16), ta, 100);
  const auto ttak2 = TkipMixer::Phase1(std::span<const uint8_t, 16>(tk.data(), 16), ta, 100);
  EXPECT_EQ(ttak1, ttak2);
  const auto ttak3 = TkipMixer::Phase1(std::span<const uint8_t, 16>(tk.data(), 16), ta, 101);
  EXPECT_NE(ttak1, ttak3);

  const auto k1 = TkipMixer::Phase2(ttak1, std::span<const uint8_t, 16>(tk.data(), 16), 1);
  const auto k2 = TkipMixer::Phase2(ttak1, std::span<const uint8_t, 16>(tk.data(), 16), 2);
  EXPECT_NE(k1, k2);
}

TEST(TkipMixer, WeakKeyByteAvoidance) {
  // RC4KEY[1] must always have bit 5 set and bit 7 clear.
  std::vector<uint8_t> tk(16, 0x3a);
  const MacAddress ta = MacAddress::FromId(9);
  const auto ttak = TkipMixer::Phase1(std::span<const uint8_t, 16>(tk.data(), 16), ta, 500);
  for (uint32_t iv16 = 0; iv16 < 2048; iv16 += 37) {
    const auto key = TkipMixer::Phase2(ttak, std::span<const uint8_t, 16>(tk.data(), 16),
                                       static_cast<uint16_t>(iv16));
    EXPECT_EQ(key[1] & 0x20, 0x20);
    EXPECT_EQ(key[1] & 0x80, 0x00);
    EXPECT_EQ(key[0], static_cast<uint8_t>(iv16 >> 8));
    EXPECT_EQ(key[2], static_cast<uint8_t>(iv16 & 0xFF));
  }
}

TEST(TkipMixer, TransmitterAddressBindsKey) {
  std::vector<uint8_t> tk(16, 0x77);
  const auto t1 = TkipMixer::Phase1(std::span<const uint8_t, 16>(tk.data(), 16),
                                    MacAddress::FromId(1), 42);
  const auto t2 = TkipMixer::Phase1(std::span<const uint8_t, 16>(tk.data(), 16),
                                    MacAddress::FromId(2), 42);
  EXPECT_NE(t1, t2);
}

// --- Cipher suites -------------------------------------------------------------

class CipherSuiteRoundTrip : public ::testing::TestWithParam<CipherSuite> {};

std::vector<uint8_t> KeyFor(CipherSuite suite) {
  switch (suite) {
    case CipherSuite::kWep:
      return std::vector<uint8_t>(13, 0x42);
    case CipherSuite::kTkip:
    case CipherSuite::kCcmp:
      return std::vector<uint8_t>(16, 0x42);
    case CipherSuite::kOpen:
      return {};
  }
  return {};
}

TEST_P(CipherSuiteRoundTrip, ProtectUnprotectRestoresPlaintext) {
  const CipherSuite suite = GetParam();
  auto tx = CreateCipher(suite, KeyFor(suite));
  auto rx = CreateCipher(suite, KeyFor(suite));
  FrameCryptoContext ctx;
  ctx.ta = MacAddress::FromId(1);
  ctx.da = MacAddress::FromId(2);
  ctx.sa = MacAddress::FromId(1);

  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    std::vector<uint8_t> body(static_cast<size_t>(rng.UniformInt(1, 1500)));
    for (auto& b : body) {
      b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    auto original = body;
    tx->Protect(ctx, body);
    EXPECT_EQ(body.size(), original.size() + CipherTotalOverheadBytes(suite));
    ASSERT_TRUE(rx->Unprotect(ctx, body)) << "packet " << i;
    EXPECT_EQ(body, original);
  }
}

TEST_P(CipherSuiteRoundTrip, OverheadMatchesDeclaration) {
  const CipherSuite suite = GetParam();
  auto tx = CreateCipher(suite, KeyFor(suite));
  FrameCryptoContext ctx;
  ctx.ta = MacAddress::FromId(1);
  ctx.da = MacAddress::FromId(2);
  ctx.sa = MacAddress::FromId(1);
  std::vector<uint8_t> body(100, 0xAA);
  tx->Protect(ctx, body);
  EXPECT_EQ(body.size(), 100 + CipherHeaderBytes(suite) + CipherTrailerBytes(suite));
}

INSTANTIATE_TEST_SUITE_P(AllSuites, CipherSuiteRoundTrip,
                         ::testing::Values(CipherSuite::kOpen, CipherSuite::kWep,
                                           CipherSuite::kTkip, CipherSuite::kCcmp),
                         [](const auto& info) { return ToString(info.param); });

TEST(CipherSuites, TamperedWepFrameFailsIcv) {
  auto tx = CreateCipher(CipherSuite::kWep, std::vector<uint8_t>(5, 0x11));
  auto rx = CreateCipher(CipherSuite::kWep, std::vector<uint8_t>(5, 0x11));
  FrameCryptoContext ctx;
  std::vector<uint8_t> body(64, 0x33);
  tx->Protect(ctx, body);
  body[20] ^= 0x40;
  EXPECT_FALSE(rx->Unprotect(ctx, body));
}

TEST(CipherSuites, TamperedCcmpFrameFailsMic) {
  auto tx = CreateCipher(CipherSuite::kCcmp, std::vector<uint8_t>(16, 0x11));
  auto rx = CreateCipher(CipherSuite::kCcmp, std::vector<uint8_t>(16, 0x11));
  FrameCryptoContext ctx;
  ctx.ta = MacAddress::FromId(1);
  std::vector<uint8_t> body(64, 0x33);
  tx->Protect(ctx, body);
  body[20] ^= 0x40;
  EXPECT_FALSE(rx->Unprotect(ctx, body));
}

TEST(CipherSuites, CcmpReplayIsRejected) {
  auto tx = CreateCipher(CipherSuite::kCcmp, std::vector<uint8_t>(16, 0x11));
  auto rx = CreateCipher(CipherSuite::kCcmp, std::vector<uint8_t>(16, 0x11));
  FrameCryptoContext ctx;
  ctx.ta = MacAddress::FromId(1);
  std::vector<uint8_t> body(64, 0x33);
  tx->Protect(ctx, body);
  auto replay = body;
  EXPECT_TRUE(rx->Unprotect(ctx, body));
  EXPECT_FALSE(rx->Unprotect(ctx, replay));  // same PN twice
}

TEST(CipherSuites, WrongKeyFailsDecryption) {
  for (CipherSuite suite : {CipherSuite::kWep, CipherSuite::kTkip, CipherSuite::kCcmp}) {
    auto tx = CreateCipher(suite, KeyFor(suite));
    auto wrong_key = KeyFor(suite);
    wrong_key[0] ^= 0xFF;
    auto rx = CreateCipher(suite, wrong_key);
    FrameCryptoContext ctx;
    ctx.ta = MacAddress::FromId(1);
    ctx.da = MacAddress::FromId(2);
    ctx.sa = MacAddress::FromId(1);
    std::vector<uint8_t> body(128, 0x5A);
    tx->Protect(ctx, body);
    EXPECT_FALSE(rx->Unprotect(ctx, body)) << ToString(suite);
  }
}

TEST(CipherSuites, TkipMicBindsSourceAddress) {
  auto tx = CreateCipher(CipherSuite::kTkip, KeyFor(CipherSuite::kTkip));
  auto rx = CreateCipher(CipherSuite::kTkip, KeyFor(CipherSuite::kTkip));
  FrameCryptoContext tx_ctx;
  tx_ctx.ta = MacAddress::FromId(1);
  tx_ctx.da = MacAddress::FromId(2);
  tx_ctx.sa = MacAddress::FromId(1);
  std::vector<uint8_t> body(64, 0x77);
  tx->Protect(tx_ctx, body);
  // A forwarder claiming a different SA must fail the Michael check.
  FrameCryptoContext rx_ctx = tx_ctx;
  rx_ctx.sa = MacAddress::FromId(9);
  EXPECT_FALSE(rx->Unprotect(rx_ctx, body));
}

}  // namespace
}  // namespace wlansim
