// Net-layer tests: Network assembly, deterministic reproducibility, traffic
// generator statistics (CBR exactness, Poisson mean, on-off duty cycle),
// and the saturated source's queue-keeping contract.

#include <gtest/gtest.h>

#include "net/network.h"

namespace wlansim {
namespace {

TEST(Network, NodeIdsAndAddressesAreSequential) {
  Network net;
  Node* a = net.AddNode({});
  Node* b = net.AddNode({});
  EXPECT_EQ(a->id(), 0u);
  EXPECT_EQ(b->id(), 1u);
  EXPECT_NE(a->address(), b->address());
  EXPECT_EQ(a->address(), MacAddress::FromId(1));
}

TEST(Network, IdenticalSeedsReproduceIdenticalRuns) {
  auto run = [](uint64_t seed) {
    Network net(Network::Params{.seed = seed});
    net.UseLogDistanceLoss(3.0);
    net.UseRayleighFading();
    Node* ap = net.AddNode({.role = MacRole::kAp, .standard = PhyStandard::k80211a});
    Node* sta = net.AddNode(
        {.role = MacRole::kSta, .standard = PhyStandard::k80211a, .position = {40, 0, 0}});
    net.StartAll();
    sta->AddTraffic<SaturatedTraffic>(ap->address(), 1, 1200)->Start(Time::Seconds(1));
    net.Run(Time::Seconds(3));
    return std::tuple{net.flow_stats().TotalRxBytes(), net.flow_stats().TotalRxPackets(),
                      sta->mac().counters().retries};
  };
  EXPECT_EQ(run(123), run(123));
  EXPECT_NE(std::get<0>(run(123)), std::get<0>(run(124)));
}

TEST(Network, ForkRngIsStableAcrossCalls) {
  Network net(Network::Params{.seed = 9});
  Rng a = net.ForkRng("x");
  Rng b = net.ForkRng("x");
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Traffic, CbrGeneratesExactCount) {
  Network net(Network::Params{.seed = 1});
  net.UseLogDistanceLoss(3.0);
  Node* a = net.AddNode({});
  Node* b = net.AddNode({.position = {10, 0, 0}});
  net.StartAll();
  auto* app = a->AddTraffic<CbrTraffic>(b->address(), 1, 100, Time::Millis(10));
  app->Start(Time::Seconds(1));
  app->StopAt(Time::Seconds(2));
  net.Run(Time::Seconds(3));
  // One packet every 10 ms over [1 s, 2 s): 100 packets (first at t=1).
  EXPECT_EQ(app->packets_sent(), 100u);
}

TEST(Traffic, PoissonMeanRateIsCorrect) {
  Network net(Network::Params{.seed = 2});
  net.UseLogDistanceLoss(3.0);
  Node* a = net.AddNode({});
  Node* b = net.AddNode({.position = {10, 0, 0}});
  net.StartAll();
  auto* app = a->AddTraffic<PoissonTraffic>(b->address(), 1, 100, 200.0, net.ForkRng("p"));
  app->Start(Time::Seconds(1));
  app->StopAt(Time::Seconds(21));
  net.Run(Time::Seconds(22));
  // 200 pkt/s over 20 s = 4000 expected; 3-sigma ≈ 190.
  EXPECT_NEAR(static_cast<double>(app->packets_sent()), 4000.0, 200.0);
}

TEST(Traffic, OnOffDutyCycleShapesThroughput) {
  Network net(Network::Params{.seed = 3});
  net.UseLogDistanceLoss(3.0);
  Node* a = net.AddNode({});
  Node* b = net.AddNode({.position = {10, 0, 0}});
  a->SetRateController(
      std::make_unique<FixedRateController>(ModesFor(PhyStandard::k80211b).back()));
  net.StartAll();
  // 1 packet per 2 ms while ON; mean ON 200 ms, mean OFF 600 ms → 25 % duty.
  auto* app = a->AddTraffic<OnOffTraffic>(b->address(), 1, 200, Time::Millis(2),
                                          Time::Millis(200), Time::Millis(600),
                                          net.ForkRng("oo"));
  app->Start(Time::Seconds(1));
  app->StopAt(Time::Seconds(21));
  net.Run(Time::Seconds(22));
  // Expected ≈ 20 s × 25 % duty × 500 pkt/s = 2500, with wide burst variance.
  EXPECT_NEAR(static_cast<double>(app->packets_sent()), 2500.0, 900.0);
}

TEST(Traffic, SaturatedKeepsQueueTopped) {
  Network net(Network::Params{.seed = 4});
  net.UseLogDistanceLoss(3.0);
  Node* ap = net.AddNode({.role = MacRole::kAp, .standard = PhyStandard::k80211b});
  Node* sta = net.AddNode(
      {.role = MacRole::kSta, .standard = PhyStandard::k80211b, .position = {10, 0, 0}});
  net.StartAll();
  auto* app = sta->AddTraffic<SaturatedTraffic>(ap->address(), 1, 500);
  app->Start(Time::Seconds(1));
  net.Run(Time::Seconds(2));
  // Mid-run the MAC queue must hold the configured backlog.
  EXPECT_GE(sta->mac().QueueSize(), 3u);
  net.Run(Time::Seconds(3));
  EXPECT_GT(ap->packets_received(), 100u);
}

TEST(Traffic, StopAtHaltsGeneration) {
  Network net(Network::Params{.seed = 5});
  net.UseLogDistanceLoss(3.0);
  Node* a = net.AddNode({});
  Node* b = net.AddNode({.position = {10, 0, 0}});
  net.StartAll();
  auto* app = a->AddTraffic<CbrTraffic>(b->address(), 1, 100, Time::Millis(5));
  app->Start(Time::Millis(100));
  app->StopAt(Time::Millis(500));
  net.Run(Time::Seconds(2));
  const uint64_t at_stop = app->packets_sent();
  net.Run(Time::Seconds(3));
  EXPECT_EQ(app->packets_sent(), at_stop);
}

TEST(Traffic, MetaStampsAreConsistent) {
  Network net(Network::Params{.seed = 6});
  net.UseLogDistanceLoss(3.0);
  Node* a = net.AddNode({});
  Node* b = net.AddNode({.position = {10, 0, 0}});
  uint32_t last_seq = 0;
  bool first = true;
  bool ordered = true;
  b->SetRxCallback([&](const Packet& p, MacAddress, MacAddress) {
    EXPECT_EQ(p.meta().flow_id, 7u);
    if (!first && p.meta().app_seq != last_seq + 1) {
      ordered = false;
    }
    last_seq = p.meta().app_seq;
    first = false;
  });
  net.StartAll();
  auto* app = a->AddTraffic<CbrTraffic>(b->address(), 7, 64, Time::Millis(20));
  app->Start(Time::Millis(100));
  net.Run(Time::Seconds(2));
  EXPECT_FALSE(first);
  EXPECT_TRUE(ordered);  // clean channel: in-order, no duplicates
}

}  // namespace
}  // namespace wlansim
