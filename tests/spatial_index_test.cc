// The spatial receiver index's one contract: with the reception cutoff
// fixed, the indexed path is bit-exact against the dense path — same
// receivers, same pre-fading powers and delays, in the same order, with the
// same RNG consumption. These tests enforce it differentially on random
// topologies (with and without fading), then pin the index's moving parts:
// lazy grid rebuilds on static teleports and mobility swaps, the exact
// boundary semantics of the cutoff, and the moving-node bypass list.

#include <cstdlib>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/packet.h"
#include "core/random.h"
#include "core/simulator.h"
#include "phy/channel.h"
#include "phy/fading.h"
#include "phy/mobility.h"
#include "phy/propagation.h"
#include "phy/wifi_mode.h"
#include "phy/wifi_phy.h"

namespace wlansim {
namespace {

// One offer as seen by the channel probe: (tx node, rx node, pre-fading
// power, delay). Exact tuple equality is the differential check.
using Offer = std::tuple<uint32_t, uint32_t, double, double>;

// A MAC-less world of bare PHYs on one channel: `n_static` uniform random
// static nodes plus `n_moving` constant-velocity movers crossing the area.
struct World {
  Simulator sim;
  Channel channel;
  std::vector<std::unique_ptr<MobilityModel>> mobility;
  std::vector<std::unique_ptr<WifiPhy>> phys;
  std::vector<Offer> offers;

  World(uint64_t seed, bool spatial, double cutoff_dbm, size_t n_static, size_t n_moving,
        double side, bool rayleigh = false)
      : channel(&sim, std::make_unique<LogDistanceLossModel>(3.0), Rng(seed)) {
    channel.SetRxCutoffDbm(cutoff_dbm);
    channel.EnableSpatialIndex(spatial);
    if (rayleigh) {
      channel.SetFading(std::make_unique<RayleighFading>());
    }
    channel.AttachProbe([this](const RadioDevice* tx, const RadioDevice* rx, double dbm,
                               Time delay) {
      offers.emplace_back(tx->node_id(), rx->node_id(), dbm, delay.seconds());
    });
    Rng rng(seed + 1);
    for (size_t i = 0; i < n_static + n_moving; ++i) {
      const Vector3 pos{rng.Uniform(0.0, side), rng.Uniform(0.0, side), 0.0};
      if (i < n_static) {
        mobility.push_back(std::make_unique<ConstantPositionMobility>(pos));
      } else {
        const Vector3 vel{rng.Uniform(-15.0, 15.0), rng.Uniform(-15.0, 15.0), 0.0};
        mobility.push_back(std::make_unique<ConstantVelocityMobility>(pos, vel));
      }
      phys.push_back(std::make_unique<WifiPhy>(&sim, WifiPhy::Config{}, Rng(seed + 10 + i)));
      phys.back()->AttachChannel(&channel, static_cast<uint32_t>(i), mobility[i].get());
    }
  }

  // `count` transmissions from senders spread over all nodes (movers
  // included), 2 ms apart so frames don't overlap, then a full drain.
  void RunSends(size_t count) {
    const Packet packet(400);
    const WifiMode mode = ModesFor(PhyStandard::k80211b).back();
    for (size_t k = 0; k < count; ++k) {
      WifiPhy* sender = phys[(k * 7919) % phys.size()].get();
      sim.Schedule(Time::Millis(2 * static_cast<int64_t>(k + 1)) - sim.Now(),
                   [this, sender, packet, mode] {
                     channel.Send(sender, packet, MakeWifiSignal(mode, packet.size(), false));
                   });
    }
    sim.RunUntil(Time::Millis(2 * static_cast<int64_t>(count + 2)));
  }
};

// The tentpole property: on random topologies the indexed path reproduces
// the dense path's offer stream exactly — not approximately, not as a set,
// but the same (tx, rx, power, delay) tuples in the same order.
TEST(SpatialIndex, RandomizedDifferentialOfferStreamIsExact) {
  for (const uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    World dense(seed, /*spatial=*/false, /*cutoff_dbm=*/-92.0, 40, 3, 600.0);
    World spatial(seed, /*spatial=*/true, /*cutoff_dbm=*/-92.0, 40, 3, 600.0);
    dense.RunSends(24);
    spatial.RunSends(24);

    ASSERT_FALSE(dense.offers.empty());
    EXPECT_EQ(dense.offers, spatial.offers) << "seed " << seed;
    // Path-invariant counters agree; the index actually ran and pruned.
    EXPECT_EQ(dense.channel.send_stats().offers, spatial.channel.send_stats().offers);
    EXPECT_EQ(dense.channel.send_stats().sends, spatial.channel.send_stats().sends);
    EXPECT_GT(spatial.channel.send_stats().grid_queries, 0u) << "seed " << seed;
    EXPECT_LT(spatial.channel.send_stats().candidates_visited,
              dense.channel.send_stats().candidates_visited)
        << "seed " << seed;
  }
}

// With per-frame fading the RNG draw sequence is part of the contract: a
// suppressed receiver must not consume a draw on either path. Post-fading
// outcomes (every PHY's reception counters) must therefore match exactly.
TEST(SpatialIndex, DifferentialWithFadingMatchesReceptionCounters) {
  for (const uint64_t seed : {7u, 77u}) {
    World dense(seed, false, -92.0, 30, 2, 500.0, /*rayleigh=*/true);
    World spatial(seed, true, -92.0, 30, 2, 500.0, /*rayleigh=*/true);
    dense.RunSends(20);
    spatial.RunSends(20);

    EXPECT_EQ(dense.offers, spatial.offers) << "seed " << seed;
    for (size_t i = 0; i < dense.phys.size(); ++i) {
      const WifiPhy::Counters& d = dense.phys[i]->counters();
      const WifiPhy::Counters& s = spatial.phys[i]->counters();
      EXPECT_EQ(d.rx_ok, s.rx_ok) << "node " << i << " seed " << seed;
      EXPECT_EQ(d.rx_error, s.rx_error) << "node " << i << " seed " << seed;
      EXPECT_EQ(d.rx_dropped_busy, s.rx_dropped_busy) << "node " << i << " seed " << seed;
    }
  }
}

// Teleporting a static node must rebuild the grid before the next send:
// the node's old cell must stop answering for it and its new cell must.
TEST(SpatialIndex, StaticTeleportRebuildsGrid) {
  Simulator sim;
  Channel channel{&sim, std::make_unique<LogDistanceLossModel>(3.0), Rng(1)};
  channel.SetRxCutoffDbm(-80.0);  // range ~=~ 21 m at 16 dBm
  channel.EnableSpatialIndex(true);
  ConstantPositionMobility pos_a{{0, 0, 0}};
  ConstantPositionMobility pos_b{{10, 0, 0}};
  ConstantPositionMobility pos_c{{5000, 5000, 0}};  // far outside a's radius
  WifiPhy a{&sim, {}, Rng(2)};
  WifiPhy b{&sim, {}, Rng(3)};
  WifiPhy c{&sim, {}, Rng(4)};
  a.AttachChannel(&channel, 0, &pos_a);
  b.AttachChannel(&channel, 1, &pos_b);
  c.AttachChannel(&channel, 2, &pos_c);

  const Packet p(100);
  const WifiMode mode = ModesFor(PhyStandard::k80211b).back();
  channel.Send(&a, p, MakeWifiSignal(mode, p.size(), false));
  EXPECT_EQ(channel.send_stats().offers, 1u);  // b only; c pruned by the grid
  EXPECT_EQ(channel.send_stats().grid_rebuilds, 1u);

  pos_c.SetPosition({0, 5, 0});  // teleport into a's cell
  channel.Send(&a, p, MakeWifiSignal(mode, p.size(), false));
  EXPECT_EQ(channel.send_stats().offers, 3u);  // b and c
  EXPECT_EQ(channel.send_stats().grid_rebuilds, 2u);
  sim.RunUntil(Time::Seconds(1));
}

// Swapping a PHY's mobility model instance (Node::SetMobility path) must
// re-register the channel's counter and force a rebuild, so the new
// position is honoured immediately.
TEST(SpatialIndex, MobilitySwapForcesRebuild) {
  Simulator sim;
  Channel channel{&sim, std::make_unique<LogDistanceLossModel>(3.0), Rng(1)};
  channel.SetRxCutoffDbm(-80.0);
  channel.EnableSpatialIndex(true);
  ConstantPositionMobility pos_a{{0, 0, 0}};
  ConstantPositionMobility far{{9000, 9000, 0}};
  WifiPhy a{&sim, {}, Rng(2)};
  WifiPhy b{&sim, {}, Rng(3)};
  a.AttachChannel(&channel, 0, &pos_a);
  b.AttachChannel(&channel, 1, &far);

  const Packet p(100);
  const WifiMode mode = ModesFor(PhyStandard::k80211b).back();
  channel.Send(&a, p, MakeWifiSignal(mode, p.size(), false));
  EXPECT_EQ(channel.send_stats().offers, 0u);

  ConstantPositionMobility near{{8, 0, 0}};
  b.SetMobility(&near);
  channel.Send(&a, p, MakeWifiSignal(mode, p.size(), false));
  EXPECT_EQ(channel.send_stats().offers, 1u);
  EXPECT_GE(channel.send_stats().grid_rebuilds, 2u);
  sim.RunUntil(Time::Seconds(1));
}

// Boundary semantics, pinned with a matrix loss (exact dB arithmetic, no
// geometry): power exactly at the cutoff is delivered (>= compare), the
// tiniest step below is suppressed. Matrix loss has no finite radius, so
// this also covers the dense-fallback path with the index enabled.
TEST(SpatialIndex, CutoffBoundaryIsInclusive) {
  Simulator sim;
  auto loss = std::make_unique<MatrixLossModel>(200.0);
  MatrixLossModel* matrix = loss.get();
  Channel channel{&sim, std::move(loss), Rng(1)};
  channel.SetRxCutoffDbm(-90.0);
  channel.EnableSpatialIndex(true);
  ConstantPositionMobility pos_a{{0, 0, 0}};
  ConstantPositionMobility pos_b{{10, 0, 0}};
  WifiPhy a{&sim, {.tx_power_dbm = 16.0}, Rng(2)};
  WifiPhy b{&sim, {}, Rng(3)};
  a.AttachChannel(&channel, 0, &pos_a);
  b.AttachChannel(&channel, 1, &pos_b);

  const Packet p(100);
  const WifiMode mode = ModesFor(PhyStandard::k80211b).back();

  matrix->SetLoss(0, 1, 106.0);  // rx = 16 - 106 = -90, exactly the cutoff
  channel.Send(&a, p, MakeWifiSignal(mode, p.size(), false));
  EXPECT_EQ(channel.send_stats().offers, 1u);
  EXPECT_EQ(channel.send_stats().cutoff_suppressed, 0u);
  // Unbounded radius: the index must have fallen back to the dense loop.
  EXPECT_EQ(channel.send_stats().grid_queries, 0u);

  matrix->SetLoss(0, 1, 106.0 + 1e-9);  // epsilon below the cutoff
  channel.Send(&a, p, MakeWifiSignal(mode, p.size(), false));
  EXPECT_EQ(channel.send_stats().offers, 1u);  // unchanged
  EXPECT_EQ(channel.send_stats().cutoff_suppressed, 1u);
  sim.RunUntil(Time::Seconds(1));
}

// A receiver placed exactly at the loss model's promised MaxRangeMeters:
// whatever the dense path decides at that floating-point knife edge, the
// indexed path must decide identically (the radius is conservative, so the
// grid may never be the one to drop it).
TEST(SpatialIndex, ReceiverExactlyAtRadiusMatchesDensePath) {
  const double cutoff = -88.0;
  const WifiPhy::Config config;  // 16 dBm, 11b
  LogDistanceLossModel probe(3.0);
  const double radius =
      probe.MaxRangeMeters(config.tx_power_dbm, TimingFor(config.standard).frequency_hz, cutoff);
  ASSERT_TRUE(std::isfinite(radius));

  std::vector<Offer> streams[2];
  for (const bool spatial : {false, true}) {
    Simulator sim;
    Channel channel{&sim, std::make_unique<LogDistanceLossModel>(3.0), Rng(1)};
    channel.SetRxCutoffDbm(cutoff);
    channel.EnableSpatialIndex(spatial);
    std::vector<Offer>& offers = streams[spatial ? 1 : 0];
    channel.AttachProbe([&offers](const RadioDevice* tx, const RadioDevice* rx, double dbm,
                                  Time d) {
      offers.emplace_back(tx->node_id(), rx->node_id(), dbm, d.seconds());
    });
    ConstantPositionMobility pos_a{{0, 0, 0}};
    ConstantPositionMobility pos_b{{radius, 0, 0}};          // the knife edge
    ConstantPositionMobility pos_c{{radius * 1.0001, 0, 0}};  // just beyond
    WifiPhy a{&sim, config, Rng(2)};
    WifiPhy b{&sim, config, Rng(3)};
    WifiPhy c{&sim, config, Rng(4)};
    a.AttachChannel(&channel, 0, &pos_a);
    b.AttachChannel(&channel, 1, &pos_b);
    c.AttachChannel(&channel, 2, &pos_c);
    const Packet p(100);
    channel.Send(&a, p, MakeWifiSignal(ModesFor(PhyStandard::k80211b).back(), p.size(), false));
    sim.RunUntil(Time::Seconds(1));
  }
  EXPECT_EQ(streams[0], streams[1]);
}

// Moving nodes live on the bypass list: a mover is offered the frame
// whenever its instantaneous power clears the cutoff, wherever it is — the
// grid never consults cells for it.
TEST(SpatialIndex, MovingReceiverBypassesGrid) {
  Simulator sim;
  Channel channel{&sim, std::make_unique<LogDistanceLossModel>(3.0), Rng(1)};
  channel.SetRxCutoffDbm(-80.0);  // range ~=~ 21 m
  channel.EnableSpatialIndex(true);
  ConstantPositionMobility pos_a{{0, 0, 0}};
  ConstantPositionMobility pos_b{{10, 0, 0}};
  // Starts 1 km out, drives through the sender at 100 m/s.
  ConstantVelocityMobility mover{{1000, 0, 0}, {-100, 0, 0}};
  WifiPhy a{&sim, {}, Rng(2)};
  WifiPhy b{&sim, {}, Rng(3)};
  WifiPhy m{&sim, {}, Rng(4)};
  a.AttachChannel(&channel, 0, &pos_a);
  b.AttachChannel(&channel, 1, &pos_b);
  m.AttachChannel(&channel, 2, &mover);

  const Packet p(100);
  const WifiMode mode = ModesFor(PhyStandard::k80211b).back();
  uint64_t offers_at_start = 0;
  uint64_t offers_at_passby = 0;
  sim.Schedule(Time::Zero(), [&] {
    // Mover 1 km out: suppressed.
    channel.Send(&a, p, MakeWifiSignal(mode, p.size(), false));
    offers_at_start = channel.send_stats().offers;
  });
  sim.Schedule(Time::Seconds(10), [&] {
    // Mover at the origin: delivered.
    channel.Send(&a, p, MakeWifiSignal(mode, p.size(), false));
    offers_at_passby = channel.send_stats().offers;
  });
  sim.RunUntil(Time::Seconds(11));

  EXPECT_EQ(offers_at_start, 1u);               // b only
  EXPECT_EQ(offers_at_passby, offers_at_start + 2u);  // b and the mover
  // One grid build covers both sends: the mover's motion must not count as
  // a topology change.
  EXPECT_EQ(channel.send_stats().grid_rebuilds, 1u);
}

// The CI A/B override: the channel reads WLANSIM_SPATIAL_INDEX and
// WLANSIM_RX_CUTOFF_DBM at construction, so an unmodified scenario binary
// can be flipped onto the indexed path from the outside. Programmatic
// setters still win afterwards.
TEST(SpatialIndex, EnvironmentOverridesAreReadAtConstruction) {
  ASSERT_EQ(setenv("WLANSIM_SPATIAL_INDEX", "1", 1), 0);
  ASSERT_EQ(setenv("WLANSIM_RX_CUTOFF_DBM", "-123.5", 1), 0);
  {
    Simulator sim;
    Channel channel{&sim, std::make_unique<LogDistanceLossModel>(3.0), Rng(1)};
    EXPECT_TRUE(channel.spatial_index_enabled());
    EXPECT_DOUBLE_EQ(channel.rx_cutoff_dbm(), -123.5);
    channel.EnableSpatialIndex(false);
    EXPECT_FALSE(channel.spatial_index_enabled());
  }
  ASSERT_EQ(unsetenv("WLANSIM_SPATIAL_INDEX"), 0);
  ASSERT_EQ(unsetenv("WLANSIM_RX_CUTOFF_DBM"), 0);
  Simulator sim;
  Channel channel{&sim, std::make_unique<LogDistanceLossModel>(3.0), Rng(1)};
  EXPECT_FALSE(channel.spatial_index_enabled());
  EXPECT_EQ(channel.rx_cutoff_dbm(), -std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace wlansim
