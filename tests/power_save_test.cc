// Power-save tests: PHY sleep accounting, AP-side buffering + TIM, PS-Poll
// delivery, wake-for-uplink, and the energy/latency trade measured end to
// end.

#include <gtest/gtest.h>

#include "net/network.h"

namespace wlansim {
namespace {

struct PsFixture {
  Network net{Network::Params{.seed = 91}};
  Node* ap;
  Node* sta;

  explicit PsFixture(bool power_save, uint8_t listen_interval = 1) {
    net.UseLogDistanceLoss(3.0);
    ap = net.AddNode({.role = MacRole::kAp, .standard = PhyStandard::k80211b, .ssid = "ps"});
    sta = net.AddNode({.role = MacRole::kSta,
                       .standard = PhyStandard::k80211b,
                       .ssid = "ps",
                       .position = {10, 0, 0},
                       .mac_tweak = [power_save, listen_interval](WifiMac::Config& c) {
                         c.power_save = power_save;
                         c.listen_interval = listen_interval;
                       }});
    net.StartAll();
  }
};

TEST(PowerSave, StationDozesBetweenBeacons) {
  PsFixture f(true);
  f.net.Run(Time::Seconds(5));
  ASSERT_TRUE(f.sta->mac().IsAssociated());
  const auto times = f.sta->phy().GetStateTimes(f.net.sim().Now());
  // With a 100 TU beacon interval and a 2 ms wake guard, the radio should
  // doze the vast majority of the time once associated.
  EXPECT_GT(times.sleep.seconds(), 3.5);
  EXPECT_LT(times.listen.seconds(), 1.5);
}

TEST(PowerSave, WithoutPsRadioNeverSleeps) {
  PsFixture f(false);
  f.net.Run(Time::Seconds(5));
  const auto times = f.sta->phy().GetStateTimes(f.net.sim().Now());
  EXPECT_EQ(times.sleep, Time::Zero());
}

TEST(PowerSave, DownlinkDeliveredViaTimAndPsPoll) {
  PsFixture f(true);
  // Let association + PS entry settle, then push 20 downlink packets.
  auto* app = f.ap->AddTraffic<CbrTraffic>(f.sta->address(), 1, 400, Time::Millis(150));
  app->Start(Time::Seconds(1));
  f.net.Run(Time::Seconds(6));

  // Frames were buffered (not delivered while dozing) and then fetched.
  EXPECT_GT(f.ap->mac().counters().ps_buffered, 10u);
  EXPECT_GT(f.sta->mac().counters().ps_polls, 10u);
  EXPECT_GT(f.sta->packets_received(), 20u);
  EXPECT_LT(f.net.flow_stats().LossRate(1), 0.05);
}

TEST(PowerSave, DeliveryLatencyIsBoundedByBeaconInterval) {
  PsFixture f(true);
  auto* app = f.ap->AddTraffic<CbrTraffic>(f.sta->address(), 1, 400, Time::Millis(300));
  app->Start(Time::Seconds(1));
  f.net.Run(Time::Seconds(6));
  const auto* flow = f.net.flow_stats().Find(1);
  ASSERT_NE(flow, nullptr);
  // Mean delay ≈ half the 102.4 ms beacon interval; max bounded by ~1.5
  // intervals (worst-case TIM miss + poll).
  EXPECT_GT(flow->delay_us.mean(), 20'000.0);
  EXPECT_LT(flow->delay_us.mean(), 110'000.0);
  EXPECT_LT(flow->delay_us.max(), 250'000.0);
}

TEST(PowerSave, ListenIntervalScalesSleepAndDelay) {
  PsFixture f1(true, 1);
  auto* a1 = f1.ap->AddTraffic<CbrTraffic>(f1.sta->address(), 1, 400, Time::Millis(300));
  a1->Start(Time::Seconds(1));
  f1.net.Run(Time::Seconds(6));

  PsFixture f3(true, 3);
  auto* a3 = f3.ap->AddTraffic<CbrTraffic>(f3.sta->address(), 1, 400, Time::Millis(300));
  a3->Start(Time::Seconds(1));
  f3.net.Run(Time::Seconds(6));

  const auto t1 = f1.sta->phy().GetStateTimes(f1.net.sim().Now());
  const auto t3 = f3.sta->phy().GetStateTimes(f3.net.sim().Now());
  EXPECT_GT(t3.sleep, t1.sleep);  // waking 3× less often sleeps more

  const auto* d1 = f1.net.flow_stats().Find(1);
  const auto* d3 = f3.net.flow_stats().Find(1);
  ASSERT_NE(d1, nullptr);
  ASSERT_NE(d3, nullptr);
  EXPECT_GT(d3->delay_us.mean(), 1.5 * d1->delay_us.mean());
}

TEST(PowerSave, UplinkTrafficWakesRadio) {
  PsFixture f(true);
  auto* app = f.sta->AddTraffic<CbrTraffic>(f.ap->address(), 2, 300, Time::Millis(100));
  app->Start(Time::Seconds(2));
  f.net.Run(Time::Seconds(5));
  // Uplink flows despite power save.
  EXPECT_GT(f.ap->packets_received(), 25u);
  EXPECT_LT(f.net.flow_stats().LossRate(2), 0.05);
}

TEST(PowerSave, EnergySavingIsLarge) {
  PsFixture with(true);
  auto* a1 = with.ap->AddTraffic<CbrTraffic>(with.sta->address(), 1, 400, Time::Millis(200));
  a1->Start(Time::Seconds(1));
  with.net.Run(Time::Seconds(6));

  PsFixture without(false);
  auto* a2 = without.ap->AddTraffic<CbrTraffic>(without.sta->address(), 1, 400,
                                                Time::Millis(200));
  a2->Start(Time::Seconds(1));
  without.net.Run(Time::Seconds(6));

  const double joules_ps =
      with.sta->phy().GetStateTimes(with.net.sim().Now()).EnergyJoules();
  const double joules_cam =
      without.sta->phy().GetStateTimes(without.net.sim().Now()).EnergyJoules();
  // The idle-listening tax dominates: PS should cut station energy by >2×.
  EXPECT_LT(joules_ps, joules_cam / 2.0);
  // Both delivered the traffic.
  EXPECT_GT(with.sta->packets_received(), 20u);
  EXPECT_GT(without.sta->packets_received(), 20u);
}

TEST(PowerSave, PhySleepStateMachine) {
  Simulator sim;
  Channel channel{&sim, std::make_unique<LogDistanceLossModel>(3.0), Rng(1)};
  ConstantPositionMobility pos{{0, 0, 0}};
  WifiPhy phy{&sim, {}, Rng(2)};
  phy.AttachChannel(&channel, 0, &pos);

  sim.Schedule(Time::Millis(10), [&] { phy.SetSleep(true); });
  sim.Schedule(Time::Millis(30), [&] { phy.SetSleep(false); });
  sim.RunUntil(Time::Millis(40));

  const auto times = phy.GetStateTimes(sim.Now());
  EXPECT_NEAR(times.sleep.millis(), 20.0, 0.001);
  EXPECT_NEAR(times.listen.millis(), 20.0, 0.001);
  EXPECT_EQ(times.tx, Time::Zero());
  EXPECT_FALSE(phy.IsAsleep());
}

}  // namespace
}  // namespace wlansim
