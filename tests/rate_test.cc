// Rate-adaptation algorithm tests: each controller's decision rules are
// exercised with deterministic feedback sequences, plus a behavioural
// comparison on a simulated lossy feedback channel.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>
#include <string>

#include "rate/arf.h"
#include "rate/minstrel.h"
#include "rate/onoe.h"
#include "rate/rate_controller.h"
#include "rate/sample_rate.h"

namespace wlansim {
namespace {

const MacAddress kPeer = MacAddress::FromId(42);

size_t IndexOf(PhyStandard standard, const WifiMode& mode) {
  const auto modes = ModesFor(standard);
  for (size_t i = 0; i < modes.size(); ++i) {
    if (modes[i] == mode) {
      return i;
    }
  }
  return SIZE_MAX;
}

// --- Fixed -----------------------------------------------------------------------

TEST(FixedRate, AlwaysReturnsConfiguredMode) {
  const WifiMode& m = ModesFor(PhyStandard::k80211a)[3];
  FixedRateController fixed(m);
  for (uint8_t retry = 0; retry < 5; ++retry) {
    EXPECT_EQ(fixed.SelectMode(kPeer, 1000, retry), m);
  }
  EXPECT_EQ(fixed.name(), "fixed-OFDM-18");
}

// --- ARF -------------------------------------------------------------------------

TEST(Arf, StartsAtLowestRate) {
  ArfController arf(PhyStandard::k80211b);
  EXPECT_EQ(arf.SelectMode(kPeer, 1000, 0).bit_rate_bps, 1'000'000u);
}

TEST(Arf, TenSuccessesStepUp) {
  ArfController arf(PhyStandard::k80211b);
  for (int i = 0; i < 10; ++i) {
    arf.OnTxResult(kPeer, arf.SelectMode(kPeer, 1000, 0), true, Time::Zero());
  }
  EXPECT_EQ(arf.CurrentRateIndex(kPeer), 1u);
}

TEST(Arf, TwoFailuresStepDown) {
  ArfController arf(PhyStandard::k80211b);
  for (int i = 0; i < 20; ++i) {
    arf.OnTxResult(kPeer, arf.SelectMode(kPeer, 1000, 0), true, Time::Zero());
  }
  const size_t before = arf.CurrentRateIndex(kPeer);
  ASSERT_GE(before, 1u);
  // A success after the climb clears the "just stepped up" probe state.
  arf.OnTxResult(kPeer, arf.SelectMode(kPeer, 1000, 0), true, Time::Zero());
  arf.OnTxResult(kPeer, arf.SelectMode(kPeer, 1000, 0), false, Time::Zero());
  EXPECT_EQ(arf.CurrentRateIndex(kPeer), before);  // one failure: no change
  arf.OnTxResult(kPeer, arf.SelectMode(kPeer, 1000, 0), false, Time::Zero());
  EXPECT_EQ(arf.CurrentRateIndex(kPeer), before - 1);
}

TEST(Arf, FailedProbeFallsBackImmediately) {
  ArfController arf(PhyStandard::k80211b);
  for (int i = 0; i < 10; ++i) {
    arf.OnTxResult(kPeer, arf.SelectMode(kPeer, 1000, 0), true, Time::Zero());
  }
  ASSERT_EQ(arf.CurrentRateIndex(kPeer), 1u);
  // First frame at the new rate fails → immediate fallback.
  arf.OnTxResult(kPeer, arf.SelectMode(kPeer, 1000, 0), false, Time::Zero());
  EXPECT_EQ(arf.CurrentRateIndex(kPeer), 0u);
}

TEST(Arf, ClimbsToTopOnCleanChannel) {
  ArfController arf(PhyStandard::k80211a);
  for (int i = 0; i < 200; ++i) {
    arf.OnTxResult(kPeer, arf.SelectMode(kPeer, 1000, 0), true, Time::Zero());
  }
  EXPECT_EQ(arf.CurrentRateIndex(kPeer), ModesFor(PhyStandard::k80211a).size() - 1);
}

TEST(Arf, PerDestinationIndependence) {
  ArfController arf(PhyStandard::k80211b);
  const MacAddress other = MacAddress::FromId(43);
  for (int i = 0; i < 10; ++i) {
    arf.OnTxResult(kPeer, arf.SelectMode(kPeer, 1000, 0), true, Time::Zero());
  }
  EXPECT_EQ(arf.CurrentRateIndex(kPeer), 1u);
  EXPECT_EQ(arf.CurrentRateIndex(other), 0u);
}

// --- AARF ------------------------------------------------------------------------

TEST(Aarf, FailedProbeDoublesThreshold) {
  ArfController::Options opts;
  opts.adaptive = true;
  ArfController aarf(PhyStandard::k80211b, opts);

  auto climb_and_fail_probe = [&] {
    // Reach the probe, then fail it.
    while (aarf.CurrentRateIndex(kPeer) == 0) {
      aarf.OnTxResult(kPeer, aarf.SelectMode(kPeer, 1000, 0), true, Time::Zero());
    }
    aarf.OnTxResult(kPeer, aarf.SelectMode(kPeer, 1000, 0), false, Time::Zero());
    EXPECT_EQ(aarf.CurrentRateIndex(kPeer), 0u);
  };

  // First climb needs 10 successes; after a failed probe the next needs 20.
  int count1 = 0;
  while (aarf.CurrentRateIndex(kPeer) == 0) {
    aarf.OnTxResult(kPeer, aarf.SelectMode(kPeer, 1000, 0), true, Time::Zero());
    ++count1;
  }
  EXPECT_EQ(count1, 10);
  aarf.OnTxResult(kPeer, aarf.SelectMode(kPeer, 1000, 0), false, Time::Zero());

  int count2 = 0;
  while (aarf.CurrentRateIndex(kPeer) == 0) {
    aarf.OnTxResult(kPeer, aarf.SelectMode(kPeer, 1000, 0), true, Time::Zero());
    ++count2;
  }
  EXPECT_EQ(count2, 20);
  (void)climb_and_fail_probe;
}

TEST(Aarf, NameReflectsVariant) {
  ArfController::Options opts;
  opts.adaptive = true;
  EXPECT_EQ(ArfController(PhyStandard::k80211b, opts).name(), "aarf");
  EXPECT_EQ(ArfController(PhyStandard::k80211b).name(), "arf");
}

// --- ONOE ------------------------------------------------------------------------

TEST(Onoe, RaisesAfterTenCleanWindows) {
  OnoeController::Options opts;
  opts.window = Time::Millis(100);
  OnoeController onoe(PhyStandard::k80211b, opts);
  Time now = Time::Zero();
  // 11 clean windows × 20 packets each, all successful.
  for (int w = 0; w < 11; ++w) {
    for (int i = 0; i < 20; ++i) {
      onoe.OnTxResult(kPeer, onoe.SelectMode(kPeer, 1000, 0), true, now);
    }
    now += Time::Millis(101);
    onoe.OnTxResult(kPeer, onoe.SelectMode(kPeer, 1000, 0), true, now);
  }
  EXPECT_EQ(onoe.SelectMode(kPeer, 1000, 0).bit_rate_bps, 2'000'000u);
}

TEST(Onoe, DropsOnHeavyFailureWindow) {
  OnoeController::Options opts;
  opts.window = Time::Millis(100);
  OnoeController onoe(PhyStandard::k80211b, opts);
  Time now = Time::Zero();
  // Climb one step first.
  for (int w = 0; w < 11; ++w) {
    for (int i = 0; i < 20; ++i) {
      onoe.OnTxResult(kPeer, onoe.SelectMode(kPeer, 1000, 0), true, now);
    }
    now += Time::Millis(101);
    onoe.OnTxResult(kPeer, onoe.SelectMode(kPeer, 1000, 0), true, now);
  }
  ASSERT_EQ(onoe.SelectMode(kPeer, 1000, 0).bit_rate_bps, 2'000'000u);
  // One disastrous window: 80 % failures.
  for (int i = 0; i < 20; ++i) {
    onoe.OnTxResult(kPeer, onoe.SelectMode(kPeer, 1000, 0), i % 5 == 0, now);
  }
  now += Time::Millis(101);
  onoe.OnTxResult(kPeer, onoe.SelectMode(kPeer, 1000, 0), true, now);
  EXPECT_EQ(onoe.SelectMode(kPeer, 1000, 0).bit_rate_bps, 1'000'000u);
}

TEST(Onoe, IsSlowerThanArf) {
  // Both see the same perfect channel; ARF reaches the top long before ONOE
  // moves at all — the defining qualitative difference.
  ArfController arf(PhyStandard::k80211b);
  OnoeController onoe(PhyStandard::k80211b);
  Time now = Time::Zero();
  for (int i = 0; i < 50; ++i) {
    arf.OnTxResult(kPeer, arf.SelectMode(kPeer, 1000, 0), true, now);
    onoe.OnTxResult(kPeer, onoe.SelectMode(kPeer, 1000, 0), true, now);
    now += Time::Millis(1);
  }
  EXPECT_GT(arf.CurrentRateIndex(kPeer), 0u);
  EXPECT_EQ(onoe.SelectMode(kPeer, 1000, 0).bit_rate_bps, 1'000'000u);
}

// --- SampleRate --------------------------------------------------------------------

TEST(SampleRate, ConvergesToBestThroughputRate) {
  SampleRateController sr(PhyStandard::k80211a, Rng(5));
  Time now = Time::Zero();
  // Simulated channel: rates up to 24 Mb/s always succeed, above always fail.
  for (int i = 0; i < 3000; ++i) {
    const WifiMode m = sr.SelectMode(kPeer, 1200, 0);
    const bool ok = m.bit_rate_bps <= 24'000'000;
    sr.OnTxResult(kPeer, m, ok, now);
    now += Time::Micros(500);
  }
  // Decisions must now overwhelmingly pick 24 Mb/s (modulo the 10 % sampling).
  int picks_24 = 0;
  for (int i = 0; i < 200; ++i) {
    const WifiMode m = sr.SelectMode(kPeer, 1200, 0);
    picks_24 += m.bit_rate_bps == 24'000'000;
    sr.OnTxResult(kPeer, m, m.bit_rate_bps <= 24'000'000, now);
    now += Time::Micros(500);
  }
  EXPECT_GT(picks_24, 150);
}

TEST(SampleRate, RetriesNeverSample) {
  SampleRateController sr(PhyStandard::k80211a, Rng(6));
  Time now = Time::Zero();
  for (int i = 0; i < 500; ++i) {
    const WifiMode m = sr.SelectMode(kPeer, 1200, 0);
    sr.OnTxResult(kPeer, m, m.bit_rate_bps <= 12'000'000, now);
    now += Time::Micros(500);
  }
  // With retry_count > 0 the controller must return its best-known rate,
  // deterministically.
  const WifiMode r1 = sr.SelectMode(kPeer, 1200, 1);
  const WifiMode r2 = sr.SelectMode(kPeer, 1200, 1);
  EXPECT_EQ(r1, r2);
  EXPECT_LE(r1.bit_rate_bps, 12'000'000u);
}

// --- Minstrel -----------------------------------------------------------------------

TEST(Minstrel, ConvergesToBestThroughputRate) {
  MinstrelController minstrel(PhyStandard::k80211a, Rng(7));
  Time now = Time::Zero();
  // 36 Mb/s succeeds 90 %, 48+ fails hard, lower rates always succeed.
  Rng channel(123);
  for (int i = 0; i < 5000; ++i) {
    const WifiMode m = minstrel.SelectMode(kPeer, 1200, 0);
    bool ok;
    if (m.bit_rate_bps <= 24'000'000) {
      ok = true;
    } else if (m.bit_rate_bps == 36'000'000) {
      ok = channel.Chance(0.9);
    } else {
      ok = channel.Chance(0.05);
    }
    minstrel.OnTxResult(kPeer, m, ok, now);
    now += Time::Micros(400);
  }
  // 36 Mb/s at 90 % beats 24 Mb/s at 100 %: expected best.
  EXPECT_EQ(ModesFor(PhyStandard::k80211a)[minstrel.BestRateIndex(kPeer)].bit_rate_bps,
            36'000'000u);
}

TEST(Minstrel, RetryChainFallsBack) {
  MinstrelController minstrel(PhyStandard::k80211a, Rng(8));
  Time now = Time::Zero();
  for (int i = 0; i < 1000; ++i) {
    const WifiMode m = minstrel.SelectMode(kPeer, 1200, 0);
    minstrel.OnTxResult(kPeer, m, true, now);
    now += Time::Micros(400);
  }
  // Final fallback (retry >= 2) is always the most robust rate.
  EXPECT_EQ(minstrel.SelectMode(kPeer, 1200, 2).bit_rate_bps, 6'000'000u);
  EXPECT_EQ(minstrel.SelectMode(kPeer, 1200, 5).bit_rate_bps, 6'000'000u);
}

TEST(Minstrel, LookAroundProbesOtherRates) {
  MinstrelController minstrel(PhyStandard::k80211a, Rng(9));
  Time now = Time::Zero();
  std::set<uint32_t> rates_seen;
  for (int i = 0; i < 2000; ++i) {
    const WifiMode m = minstrel.SelectMode(kPeer, 1200, 0);
    rates_seen.insert(m.bit_rate_bps);
    minstrel.OnTxResult(kPeer, m, true, now);
    now += Time::Micros(400);
  }
  // Probing must have touched every rate eventually.
  EXPECT_EQ(rates_seen.size(), ModesFor(PhyStandard::k80211a).size());
}

// --- Cross-controller behavioural property -------------------------------------------

using ControllerFactory = std::function<std::unique_ptr<RateController>()>;

class AllControllers : public ::testing::TestWithParam<int> {
 public:
  std::unique_ptr<RateController> Make() const {
    switch (GetParam()) {
      case 0:
        return std::make_unique<ArfController>(PhyStandard::k80211a);
      case 1: {
        ArfController::Options o;
        o.adaptive = true;
        return std::make_unique<ArfController>(PhyStandard::k80211a, o);
      }
      case 2:
        return std::make_unique<OnoeController>(PhyStandard::k80211a);
      case 3:
        return std::make_unique<SampleRateController>(PhyStandard::k80211a, Rng(11));
      case 4:
        return std::make_unique<MinstrelController>(PhyStandard::k80211a, Rng(12));
      default:
        return std::make_unique<FixedRateController>(BaseModeFor(PhyStandard::k80211a));
    }
  }
};

TEST_P(AllControllers, AlwaysReturnsValidMode) {
  auto ctl = Make();
  Rng channel(77);
  Time now = Time::Zero();
  for (int i = 0; i < 2000; ++i) {
    const uint8_t retry = static_cast<uint8_t>(i % 4);
    const WifiMode m = ctl->SelectMode(kPeer, 1500, retry);
    EXPECT_NE(IndexOf(PhyStandard::k80211a, m), SIZE_MAX);
    ctl->OnTxResult(kPeer, m, channel.Chance(0.7), now);
    now += Time::Micros(300);
  }
}

TEST_P(AllControllers, SurvivesTotalBlackout) {
  auto ctl = Make();
  Time now = Time::Zero();
  for (int i = 0; i < 500; ++i) {
    const WifiMode m = ctl->SelectMode(kPeer, 1500, 0);
    ctl->OnTxResult(kPeer, m, false, now);
    ctl->OnFinalFailure(kPeer);
    now += Time::Millis(2);
  }
  // After a blackout every adaptive controller must sit at/near the most
  // robust rate (index 0 or 1, allowing probe packets).
  const WifiMode m = ctl->SelectMode(kPeer, 1500, 3);
  EXPECT_LE(IndexOf(PhyStandard::k80211a, m), 1u);
}

std::string ControllerName(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"arf", "aarf", "onoe", "samplerate", "minstrel", "fixed"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllControllers, ::testing::Range(0, 6), ControllerName);

}  // namespace
}  // namespace wlansim
