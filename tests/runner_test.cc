// Campaign engine tests: substream seeding, params parsing, registry lookup,
// CI aggregation math, and jobs-independence of campaign results.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "core/random.h"
#include "runner/campaign.h"
#include "runner/result_sink.h"
#include "runner/scenario.h"
#include "runner/scenario_registry.h"

namespace wlansim {
namespace {

// --- Substream seeding ---------------------------------------------------------

TEST(Substream, DeterministicAndOrderIndependent) {
  const uint64_t a = SubstreamSeed(42, "saturation", 3);
  const uint64_t b = SubstreamSeed(42, "saturation", 3);
  EXPECT_EQ(a, b);

  Rng r1 = Rng::Substream(42, "saturation", 3);
  Rng r2 = Rng::Substream(42, "saturation", 3);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(r1.NextU64(), r2.NextU64());
  }
}

TEST(Substream, DistinctAcrossIndexStreamAndSeed) {
  std::set<uint64_t> seeds;
  for (uint64_t index = 0; index < 100; ++index) {
    seeds.insert(SubstreamSeed(1, "s", index));
  }
  EXPECT_EQ(seeds.size(), 100u);
  EXPECT_NE(SubstreamSeed(1, "alpha", 0), SubstreamSeed(1, "beta", 0));
  EXPECT_NE(SubstreamSeed(1, "s", 0), SubstreamSeed(2, "s", 0));
}

// --- ScenarioParams ------------------------------------------------------------

TEST(ScenarioParams, TypedGetters) {
  ScenarioParams p;
  p.Set("n", "12");
  p.Set("x", "2.5");
  p.Set("flag", "true");
  p.Set("name", "hello");
  EXPECT_EQ(p.GetInt("n", 0), 12);
  EXPECT_DOUBLE_EQ(p.GetDouble("x", 0), 2.5);
  EXPECT_TRUE(p.GetBool("flag", false));
  EXPECT_EQ(p.GetString("name", ""), "hello");
  // Defaults for absent keys.
  EXPECT_EQ(p.GetInt("absent", 7), 7);
  EXPECT_FALSE(p.GetBool("absent", false));
}

TEST(ScenarioParams, MalformedValuesThrow) {
  ScenarioParams p;
  p.Set("n", "12abc");
  p.Set("b", "maybe");
  p.Set("neg", "-3");
  EXPECT_THROW(p.GetInt("n", 0), std::invalid_argument);
  EXPECT_THROW(p.GetBool("b", false), std::invalid_argument);
  // Counts reject negatives instead of wrapping to 2^64-3.
  EXPECT_EQ(p.GetInt("neg", 0), -3);
  EXPECT_THROW(p.GetUint("neg", 0), std::invalid_argument);
}

// --- Registry ------------------------------------------------------------------

TEST(Registry, BuiltinScenariosRegistered) {
  ScenarioRegistry& registry = ScenarioRegistry::Global();
  for (const char* name : {"saturation", "hidden_terminal", "edca", "rate_vs_distance",
                           "ism_interference", "adhoc_vs_infra", "coexistence", "fragmentation",
                           "roaming", "sensor_coexistence", "lora_coexistence"}) {
    EXPECT_NE(registry.Find(name), nullptr) << name;
  }
  EXPECT_EQ(registry.Find("no_such_scenario"), nullptr);
}

TEST(Registry, DuplicateRegistrationThrows) {
  ScenarioRegistry registry;
  registry.Register("dup", "first", {},
                    [](const ScenarioParams&, const ReplicationContext&) {
                      return ReplicationResult{};
                    });
  EXPECT_THROW(registry.Register("dup", "second", {},
                                 [](const ScenarioParams&, const ReplicationContext&) {
                                   return ReplicationResult{};
                                 }),
               std::invalid_argument);
}

TEST(Registry, UnknownScenarioErrorListsAvailable) {
  CampaignOptions options;
  options.scenario = "no_such_scenario";
  try {
    RunCampaign(options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no_such_scenario"), std::string::npos);
    EXPECT_NE(msg.find("saturation"), std::string::npos);
  }
}

TEST(Registry, UnknownParameterRejected) {
  CampaignOptions options;
  options.scenario = "saturation";
  options.params.Set("n_stas_typo", "4");
  EXPECT_THROW(RunCampaign(options), std::invalid_argument);
}

// --- CI aggregation math -------------------------------------------------------

TEST(ResultSinkTest, StudentTCriticalValues) {
  EXPECT_TRUE(std::isinf(StudentT95(0)));
  EXPECT_NEAR(StudentT95(1), 12.706, 1e-9);
  EXPECT_NEAR(StudentT95(4), 2.776, 1e-9);
  EXPECT_NEAR(StudentT95(30), 2.042, 1e-9);
  EXPECT_NEAR(StudentT95(1000), 1.960, 1e-9);
}

TEST(ResultSinkTest, AggregateMeanStddevCi) {
  ResultSink sink(5);
  for (size_t i = 0; i < 5; ++i) {
    ReplicationResult r;
    r.metrics["x"] = static_cast<double>(i + 1);  // 1..5
    sink.Store(i, r);
  }
  const auto aggregates = sink.Aggregate();
  ASSERT_EQ(aggregates.size(), 1u);
  const MetricAggregate& a = aggregates[0];
  EXPECT_EQ(a.metric, "x");
  EXPECT_EQ(a.count, 5u);
  EXPECT_DOUBLE_EQ(a.mean, 3.0);
  EXPECT_NEAR(a.stddev, std::sqrt(2.5), 1e-12);
  // t(df=4, 97.5%) * s / sqrt(n)
  EXPECT_NEAR(a.ci95_half, 2.776 * std::sqrt(2.5) / std::sqrt(5.0), 1e-9);
  EXPECT_DOUBLE_EQ(a.min, 1.0);
  EXPECT_DOUBLE_EQ(a.max, 5.0);
}

TEST(ResultSinkTest, ExactQuantileMath) {
  EXPECT_DOUBLE_EQ(ExactQuantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ExactQuantile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(ExactQuantile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(ExactQuantile({7.0}, 1.0), 7.0);
  // Input need not be sorted.
  EXPECT_DOUBLE_EQ(ExactQuantile({3.0, 1.0, 2.0}, 0.5), 2.0);
  // Linear interpolation between order statistics (type 7): even count.
  EXPECT_DOUBLE_EQ(ExactQuantile({4.0, 3.0, 2.0, 1.0}, 0.5), 2.5);
  // 1..5 at q=0.95: rank h = 3.8, so 4 + 0.8 * (5 - 4) = 4.8.
  EXPECT_DOUBLE_EQ(ExactQuantile({1.0, 2.0, 3.0, 4.0, 5.0}, 0.95), 4.8);
  // Out-of-range q clamps to the extremes.
  EXPECT_DOUBLE_EQ(ExactQuantile({1.0, 2.0}, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(ExactQuantile({1.0, 2.0}, 2.0), 2.0);
}

TEST(ResultSinkTest, AggregateQuantiles) {
  ResultSink sink(5);
  for (size_t i = 0; i < 5; ++i) {
    ReplicationResult r;
    r.metrics["x"] = static_cast<double>(5 - i);  // stored unsorted: 5..1
    sink.Store(i, r);
  }
  const auto aggregates = sink.Aggregate();
  ASSERT_EQ(aggregates.size(), 1u);
  EXPECT_DOUBLE_EQ(aggregates[0].p50, 3.0);
  EXPECT_DOUBLE_EQ(aggregates[0].p95, 4.8);
}

TEST(ResultSinkTest, CsvHeadersAreStable) {
  // Downstream tooling keys on these exact headers; change them only
  // together with every CSV consumer (CI artifacts, figure scripts).
  EXPECT_EQ(ResultSink::AggregatesToCsv({}),
            "metric,count,mean,stddev,ci95_half,min,max,p50,p95\n");
  EXPECT_EQ(ResultSink::SweepLongCsv({"a", "b"}, {}),
            "a,b,metric,count,mean,stddev,ci95_half,min,max,p50,p95\n");
}

TEST(ResultSinkTest, SingleReplicationHasZeroCi) {
  ResultSink sink(1);
  ReplicationResult r;
  r.metrics["x"] = 4.0;
  sink.Store(0, r);
  const auto aggregates = sink.Aggregate();
  ASSERT_EQ(aggregates.size(), 1u);
  EXPECT_DOUBLE_EQ(aggregates[0].stddev, 0.0);
  EXPECT_DOUBLE_EQ(aggregates[0].ci95_half, 0.0);
}

TEST(ResultSinkTest, CsvAndJsonShape) {
  ResultSink sink(2);
  for (size_t i = 0; i < 2; ++i) {
    ReplicationResult r;
    r.metrics["goodput"] = 1.0 + static_cast<double>(i);
    sink.Store(i, r);
  }
  const auto aggregates = sink.Aggregate();
  const std::string csv = ResultSink::AggregatesToCsv(aggregates);
  EXPECT_NE(csv.find("metric,count,mean,stddev,ci95_half,min,max"), std::string::npos);
  EXPECT_NE(csv.find("goodput,2,1.5"), std::string::npos);
  const std::string json = ResultSink::AggregatesToJson("sat", 2, aggregates);
  EXPECT_NE(json.find("\"scenario\": \"sat\""), std::string::npos);
  EXPECT_NE(json.find("\"replications\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"goodput\""), std::string::npos);
  const std::string reps = ResultSink::ReplicationsToCsv(sink.replications());
  EXPECT_NE(reps.find("replication,goodput"), std::string::npos);
  EXPECT_NE(reps.find("0,1\n"), std::string::npos);
  EXPECT_NE(reps.find("1,2\n"), std::string::npos);
}

// --- Campaign ------------------------------------------------------------------

// A synthetic scenario that reports a function of its substream seed: cheap,
// and any scheduling-order dependence would show up immediately.
class SeedEchoScenario final : public Scenario {
 public:
  std::string_view name() const override { return "seed_echo"; }
  std::string_view description() const override { return "test scenario"; }
  ReplicationResult Run(const ScenarioParams&, const ReplicationContext& ctx) const override {
    ReplicationResult r;
    r.metrics["seed_mod"] = static_cast<double>(ctx.seed % 1000003);
    r.metrics["replication"] = static_cast<double>(ctx.replication);
    return r;
  }
};

TEST(Campaign, ResultsIndependentOfJobs) {
  SeedEchoScenario scenario;
  CampaignOptions options;
  options.scenario = "seed_echo";
  options.base_seed = 99;
  options.replications = 64;

  options.jobs = 1;
  const CampaignResult serial = Campaign(scenario).Run(options);
  options.jobs = 8;
  const CampaignResult parallel = Campaign(scenario).Run(options);

  ASSERT_EQ(serial.replications.size(), parallel.replications.size());
  for (size_t i = 0; i < serial.replications.size(); ++i) {
    EXPECT_EQ(serial.replications[i].metrics, parallel.replications[i].metrics) << i;
    // Replication i really ran as replication i, on any thread.
    EXPECT_DOUBLE_EQ(serial.replications[i].metrics.at("replication"),
                     static_cast<double>(i));
  }
  ASSERT_EQ(serial.aggregates.size(), parallel.aggregates.size());
  for (size_t i = 0; i < serial.aggregates.size(); ++i) {
    EXPECT_EQ(serial.aggregates[i].metric, parallel.aggregates[i].metric);
    EXPECT_DOUBLE_EQ(serial.aggregates[i].mean, parallel.aggregates[i].mean);
    EXPECT_DOUBLE_EQ(serial.aggregates[i].stddev, parallel.aggregates[i].stddev);
  }
}

TEST(Campaign, RealScenarioDeterministicAcrossJobs) {
  CampaignOptions options;
  options.scenario = "saturation";
  options.base_seed = 7;
  options.replications = 4;
  options.params.Set("sim_time_s", "0.5");

  options.jobs = 1;
  const CampaignResult serial = RunCampaign(options);
  options.jobs = 4;
  const CampaignResult parallel = RunCampaign(options);

  ASSERT_EQ(serial.replications.size(), 4u);
  for (size_t i = 0; i < serial.replications.size(); ++i) {
    EXPECT_EQ(serial.replications[i].metrics, parallel.replications[i].metrics) << i;
  }
  // Byte-identical serialized aggregates, the CLI-level guarantee.
  EXPECT_EQ(ResultSink::AggregatesToCsv(serial.aggregates),
            ResultSink::AggregatesToCsv(parallel.aggregates));
}

TEST(Campaign, DifferentSeedsAcrossReplications) {
  SeedEchoScenario scenario;
  CampaignOptions options;
  options.scenario = "seed_echo";
  options.base_seed = 5;
  options.replications = 32;
  options.jobs = 4;
  const CampaignResult result = Campaign(scenario).Run(options);
  std::set<double> seen;
  for (const ReplicationResult& r : result.replications) {
    seen.insert(r.metrics.at("seed_mod"));
  }
  EXPECT_EQ(seen.size(), result.replications.size());
}

class ThrowingScenario final : public Scenario {
 public:
  std::string_view name() const override { return "throwing"; }
  std::string_view description() const override { return "always throws"; }
  ReplicationResult Run(const ScenarioParams&, const ReplicationContext&) const override {
    throw std::runtime_error("scenario blew up");
  }
};

TEST(Campaign, ScenarioExceptionsPropagate) {
  ThrowingScenario scenario;
  CampaignOptions options;
  options.replications = 8;
  options.jobs = 4;
  EXPECT_THROW(Campaign(scenario).Run(options), std::runtime_error);
}

}  // namespace
}  // namespace wlansim
