// Core kernel tests: Time arithmetic, event queue ordering and cancellation,
// simulator semantics, deterministic RNG, packet buffer, MAC addresses.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "core/event_queue.h"
#include "core/flat_hash.h"
#include "core/mac_address.h"
#include "core/packet.h"
#include "core/random.h"
#include "core/simulator.h"
#include "core/time.h"
#include "core/units.h"

namespace wlansim {
namespace {

// --- Time ----------------------------------------------------------------------

TEST(Time, ConstructionAndAccessors) {
  EXPECT_EQ(Time::Micros(5).picos(), 5'000'000);
  EXPECT_EQ(Time::Millis(2).picos(), 2'000'000'000);
  EXPECT_EQ(Time::Seconds(1).picos(), 1'000'000'000'000);
  EXPECT_DOUBLE_EQ(Time::Micros(10).seconds(), 10e-6);
  EXPECT_DOUBLE_EQ(Time::Seconds(2.5).seconds(), 2.5);
}

TEST(Time, SubNanosecondResolution) {
  // 802.11b 11 Mb/s byte time is 8/11 us ≈ 727272.7 ps — representable to
  // within half a picosecond, far below any protocol timing constant.
  const Time byte_time = Time::Micros(8.0 / 11.0);
  EXPECT_NEAR(static_cast<double>(byte_time.picos()), 8e6 / 11.0, 0.5);
}

TEST(Time, Arithmetic) {
  const Time a = Time::Micros(10);
  const Time b = Time::Micros(4);
  EXPECT_EQ((a + b).micros(), 14.0);
  EXPECT_EQ((a - b).micros(), 6.0);
  EXPECT_EQ((a * 3).micros(), 30.0);
  EXPECT_EQ((a / 2).micros(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_EQ((2.5 * b).micros(), 10.0);
}

TEST(Time, Comparisons) {
  EXPECT_LT(Time::Micros(1), Time::Micros(2));
  EXPECT_EQ(Time::Millis(1), Time::Micros(1000));
  EXPECT_TRUE(Time::Zero().IsZero());
  EXPECT_TRUE((Time::Zero() - Time::Micros(1)).IsNegative());
}

TEST(Time, ToStringPicksUnits) {
  EXPECT_EQ(Time::Seconds(2).ToString(), "2s");
  EXPECT_EQ(Time::Micros(12.5).ToString(), "12.5us");
  EXPECT_EQ(Time::Nanos(3).ToString(), "3ns");
}

// --- EventQueue ------------------------------------------------------------------

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(Time::Micros(30), [&] { order.push_back(3); });
  q.Schedule(Time::Micros(10), [&] { order.push_back(1); });
  q.Schedule(Time::Micros(20), [&] { order.push_back(2); });
  while (!q.IsEmpty()) {
    q.PopNext(nullptr)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(Time::Micros(5), [&order, i] { order.push_back(i); });
  }
  while (!q.IsEmpty()) {
    q.PopNext(nullptr)();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.Schedule(Time::Micros(1), [&] { ran = true; });
  EXPECT_TRUE(id.IsPending());
  id.Cancel();
  EXPECT_FALSE(id.IsPending());
  EXPECT_TRUE(q.IsEmpty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelMiddleEventKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(Time::Micros(1), [&] { order.push_back(1); });
  EventId mid = q.Schedule(Time::Micros(2), [&] { order.push_back(2); });
  q.Schedule(Time::Micros(3), [&] { order.push_back(3); });
  mid.Cancel();
  while (!q.IsEmpty()) {
    q.PopNext(nullptr)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, DefaultEventIdIsInert) {
  EventId id;
  EXPECT_FALSE(id.IsPending());
  id.Cancel();  // no crash
}

TEST(EventQueue, CancelAfterExecutionIsInert) {
  EventQueue q;
  int runs = 0;
  EventId id = q.Schedule(Time::Micros(1), [&] { ++runs; });
  q.PopNext(nullptr)();
  EXPECT_FALSE(id.IsPending());
  // The executed event's slot is free for reuse; a stale Cancel must not
  // touch whatever event recycles it.
  EventId next = q.Schedule(Time::Micros(2), [&] { ++runs; });
  id.Cancel();
  EXPECT_TRUE(next.IsPending());
  q.PopNext(nullptr)();
  EXPECT_EQ(runs, 2);
  EXPECT_TRUE(q.IsEmpty());
}

TEST(EventQueue, GenerationGuardsRecycledSlots) {
  EventQueue q;
  bool first_ran = false;
  bool second_ran = false;
  EventId first = q.Schedule(Time::Micros(1), [&] { first_ran = true; });
  first.Cancel();
  EXPECT_TRUE(q.IsEmpty());
  // The cancelled slot is recycled; the stale handle (older generation)
  // must neither report pending nor cancel the new occupant.
  EventId second = q.Schedule(Time::Micros(1), [&] { second_ran = true; });
  first.Cancel();
  EXPECT_FALSE(first.IsPending());
  EXPECT_TRUE(second.IsPending());
  while (!q.IsEmpty()) {
    q.PopNext(nullptr)();
  }
  EXPECT_FALSE(first_ran);
  EXPECT_TRUE(second_ran);
}

TEST(EventQueue, SelfCancelDuringExecutionIsInert) {
  EventQueue q;
  EventId id;
  int runs = 0;
  id = q.Schedule(Time::Micros(1), [&] {
    ++runs;
    id.Cancel();  // the event is already executing: must be a no-op
    EXPECT_FALSE(id.IsPending());
  });
  q.PopNext(nullptr)();
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(q.IsEmpty());
}

TEST(EventQueue, TombstonesNeverExceedHalfTheHeap) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.Schedule(Time::Micros(i), [] {}));
  }
  // Mass-cancel the first 600: compaction must keep the invariant
  // tombstones <= heap/2 at every step, not just at the head.
  for (int i = 0; i < 600; ++i) {
    ids[static_cast<size_t>(i)].Cancel();
    EXPECT_LE(q.TombstoneCount() * 2, q.HeapSize());
  }
  EXPECT_LT(q.HeapSize(), 1000u);  // at least one bulk compaction ran
  int executed = 0;
  while (!q.IsEmpty()) {
    q.PopNext(nullptr)();
    ++executed;
  }
  EXPECT_EQ(executed, 400);
}

TEST(EventQueue, CompactionPreservesFifoOrder) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  // All at the same timestamp, so only the seq tie-breaker orders them.
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.Schedule(Time::Micros(5), [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 60; ++i) {  // > half: forces a bulk compaction
    ids[static_cast<size_t>(i)].Cancel();
  }
  while (!q.IsEmpty()) {
    q.PopNext(nullptr)();
  }
  ASSERT_EQ(order.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], 60 + i);
  }
}

TEST(EventQueue, OversizedClosureUsesHeapFallbackIntact) {
  EventQueue q;
  std::array<uint64_t, 32> big{};  // 256 B closure: above the inline buffer
  static_assert(sizeof(big) > EventFn::kInlineBytes);
  big[31] = 7;
  uint64_t seen = 0;
  q.Schedule(Time::Micros(1), [big, &seen] { seen = big[31]; });
  q.PopNext(nullptr)();
  EXPECT_EQ(seen, 7u);
}

TEST(EventQueue, CountersTrackScheduledAndHeld) {
  EventQueue q;
  EXPECT_EQ(q.TotalScheduled(), 0u);
  q.Schedule(Time::Micros(1), [] {});
  q.Schedule(Time::Micros(2), [] {});
  EXPECT_EQ(q.TotalScheduled(), 2u);
  EXPECT_EQ(q.HeapSize(), 2u);
  q.PopNext(nullptr)();
  EXPECT_EQ(q.TotalScheduled(), 2u);  // lifetime counter, not a queue size
  EXPECT_EQ(q.HeapSize(), 1u);
}

// --- Simulator --------------------------------------------------------------------

TEST(Simulator, AdvancesClockToEventTimes) {
  Simulator sim;
  std::vector<double> at;
  sim.Schedule(Time::Micros(10), [&] { at.push_back(sim.Now().micros()); });
  sim.Schedule(Time::Micros(5), [&] { at.push_back(sim.Now().micros()); });
  sim.Run();
  EXPECT_EQ(at, (std::vector<double>{5.0, 10.0}));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sim.Schedule(Time::Micros(1), recurse);
    }
  };
  sim.Schedule(Time::Micros(1), recurse);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), Time::Micros(5));
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    sim.Schedule(Time::Millis(1), tick);
  };
  sim.Schedule(Time::Millis(1), tick);
  sim.RunUntil(Time::Millis(10));
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.Now(), Time::Millis(10));
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.Schedule(Time::Micros(i), [&] {
      if (++count == 3) {
        sim.Stop();
      }
    });
  }
  sim.Run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  bool ran = false;
  sim.Schedule(Time::Micros(5), [&] {
    sim.Schedule(Time::Micros(-10), [&] {
      ran = true;
      EXPECT_EQ(sim.Now(), Time::Micros(5));
    });
  });
  sim.Run();
  EXPECT_TRUE(ran);
}

// --- Rng --------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64();
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent(7);
  Rng f1 = parent.Fork("alpha");
  Rng f2 = parent.Fork("alpha");
  Rng f3 = parent.Fork("beta");
  EXPECT_EQ(f1.NextU64(), f2.NextU64());
  EXPECT_NE(f1.NextU64(), f3.NextU64());
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 7);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 7);
    saw_lo |= v == 0;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.Exponential(2.0);
  }
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0;
  double sq = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

// --- Packet -----------------------------------------------------------------------

TEST(Packet, HeaderPrependAndStrip) {
  Packet p(10);
  const std::vector<uint8_t> header = {1, 2, 3, 4};
  p.AddHeader(header);
  EXPECT_EQ(p.size(), 14u);
  EXPECT_EQ(p.bytes()[0], 1);
  p.RemoveHeader(4);
  EXPECT_EQ(p.size(), 10u);
}

TEST(Packet, HeadroomGrowsWhenExhausted) {
  Packet p(4, /*headroom=*/2);
  const std::vector<uint8_t> big(100, 0xAB);
  p.AddHeader(big);
  EXPECT_EQ(p.size(), 104u);
  EXPECT_EQ(p.bytes()[0], 0xAB);
}

TEST(Packet, TrailerOps) {
  Packet p(std::vector<uint8_t>{1, 2, 3});
  const std::vector<uint8_t> fcs = {9, 9};
  p.AddTrailer(fcs);
  EXPECT_EQ(p.size(), 5u);
  EXPECT_EQ(p.bytes()[4], 9);
  p.RemoveTrailer(2);
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.bytes()[2], 3);
}

TEST(Packet, UniqueUids) {
  Packet a(1);
  Packet b(1);
  EXPECT_NE(a.uid(), b.uid());
}

TEST(Packet, CopyPreservesMetaAndBytes) {
  Packet a(std::vector<uint8_t>{5, 6, 7});
  a.meta().flow_id = 42;
  Packet b = a;
  EXPECT_EQ(b.meta().flow_id, 42u);
  EXPECT_EQ(b.bytes()[1], 6);
}

TEST(Packet, EmptySpanConstructs) {
  // Regression: an empty span has a null data(), which must not be fed to
  // memcpy (UB even at length 0). The UBSan job watches this test.
  Packet p{std::span<const uint8_t>{}};
  EXPECT_EQ(p.size(), 0u);
  EXPECT_TRUE(p.empty());
  const std::vector<uint8_t> header = {1, 2};
  p.AddHeader(header);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.bytes()[0], 1);
}

// --- Packet copy-on-write ---------------------------------------------------------

TEST(PacketCow, CopySharesBufferAndUid) {
  Packet a(std::vector<uint8_t>{1, 2, 3, 4});
  Packet b = a;
  EXPECT_TRUE(a.SharesBufferWith(b));
  EXPECT_EQ(a.buffer_refcount(), 2u);
  EXPECT_EQ(a.uid(), b.uid());
  EXPECT_EQ(b.bytes()[3], 4);
}

TEST(PacketCow, MutableBytesDetachesAndLeavesSiblingIntact) {
  Packet a(std::vector<uint8_t>{1, 2, 3});
  Packet b = a;
  b.mutable_bytes()[0] = 99;
  EXPECT_FALSE(a.SharesBufferWith(b));
  EXPECT_EQ(a.buffer_refcount(), 1u);
  EXPECT_EQ(b.buffer_refcount(), 1u);
  EXPECT_EQ(a.bytes()[0], 1);  // sibling never sees the mutation
  EXPECT_EQ(b.bytes()[0], 99);
  EXPECT_EQ(a.uid(), b.uid());  // detaching does not re-identify the view
}

TEST(PacketCow, AddHeaderDetachesSharedBuffer) {
  Packet a(std::vector<uint8_t>{7, 8});
  Packet b = a;
  const std::vector<uint8_t> header = {1};
  b.AddHeader(header);
  EXPECT_FALSE(a.SharesBufferWith(b));
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.bytes()[0], 7);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.bytes()[0], 1);
}

TEST(PacketCow, AddTrailerAndSetBytesDetachShared) {
  Packet a(std::vector<uint8_t>{7, 8});
  Packet b = a;
  const std::vector<uint8_t> fcs = {9};
  b.AddTrailer(fcs);
  EXPECT_FALSE(a.SharesBufferWith(b));
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.bytes()[2], 9);

  Packet c = a;
  const std::vector<uint8_t> fresh = {4, 5, 6};
  c.SetBytes(fresh);
  EXPECT_FALSE(a.SharesBufferWith(c));
  EXPECT_EQ(a.bytes()[0], 7);
  EXPECT_EQ(c.bytes()[0], 4);
}

TEST(PacketCow, RemoveOpsAreOffsetOnlyAndStayShared) {
  Packet a(std::vector<uint8_t>{1, 2, 3, 4, 5});
  Packet b = a;
  b.RemoveHeader(1);
  b.RemoveTrailer(1);
  // The receive-side MPDU strip must not fault the shared fan-out buffer.
  EXPECT_TRUE(a.SharesBufferWith(b));
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.bytes()[0], 2);
  EXPECT_EQ(a.size(), 5u);
}

TEST(PacketCow, MetaIsPerViewWithoutDetaching) {
  Packet a(std::vector<uint8_t>{1});
  a.meta().retries = 0;
  Packet b = a;
  b.meta().retries = 3;  // the MAC bumps retries on its own view
  EXPECT_TRUE(a.SharesBufferWith(b));
  EXPECT_EQ(a.meta().retries, 0u);
  EXPECT_EQ(b.meta().retries, 3u);
}

TEST(PacketCow, ClosureDestructionDropsRefcount) {
  Simulator sim;
  Packet a(std::vector<uint8_t>{1, 2, 3});
  sim.Schedule(Time::Micros(1), [p = a] { (void)p; });
  EXPECT_EQ(a.buffer_refcount(), 2u);
  sim.Run();  // the delivered closure (and its view) is destroyed after running
  EXPECT_EQ(a.buffer_refcount(), 1u);
}

TEST(PacketCow, CowCopiedBytesCountsOnlySharedDetaches) {
  Packet a(std::vector<uint8_t>{1, 2, 3, 4});
  const std::vector<uint8_t> big(300, 0xEE);
  const uint64_t before = Packet::CowCopiedBytes();
  a.AddHeader(big);  // exclusive growth: a copy, but not a CoW fault
  EXPECT_EQ(Packet::CowCopiedBytes(), before);
  Packet b = a;
  (void)b.mutable_bytes();  // shared detach: counted at the visible size
  EXPECT_EQ(Packet::CowCopiedBytes(), before + 304);
}

TEST(EventQueue, HeapFallbacksCountsOnlyOversizedClosures) {
  EventQueue q;
  q.Schedule(Time::Micros(1), [] {});  // fits inline
  EXPECT_EQ(q.HeapFallbacks(), 0u);
  std::array<uint64_t, 32> big{};
  static_assert(sizeof(big) > EventFn::kInlineBytes);
  q.Schedule(Time::Micros(2), [big] { (void)big; });
  EXPECT_EQ(q.HeapFallbacks(), 1u);
}

// --- FlatHash64 -------------------------------------------------------------------

TEST(FlatHash64, InsertFindOverwriteAndGrowth) {
  FlatHash64<double> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(42), nullptr);
  // Link-id shaped keys: (tx << 32) | rx, enough of them to force rehashes.
  auto key = [](uint64_t i) { return (i << 32) | (i + 1); };
  for (uint64_t i = 0; i < 1000; ++i) {
    map.InsertOrAssign(key(i), static_cast<double>(i));
  }
  EXPECT_EQ(map.size(), 1000u);
  for (uint64_t i = 0; i < 1000; ++i) {
    const double* v = map.Find(key(i));
    ASSERT_NE(v, nullptr) << i;
    EXPECT_DOUBLE_EQ(*v, static_cast<double>(i));
  }
  EXPECT_EQ(map.Find(key(1000)), nullptr);
  map.InsertOrAssign(key(5), -1.0);
  EXPECT_EQ(map.size(), 1000u);  // overwrite, not a second insert
  EXPECT_DOUBLE_EQ(*map.Find(key(5)), -1.0);
}

// --- MacAddress -------------------------------------------------------------------

TEST(MacAddress, FromIdAndToString) {
  const MacAddress a = MacAddress::FromId(0x010203);
  EXPECT_EQ(a.ToString(), "02:00:00:01:02:03");
  EXPECT_FALSE(a.IsGroup());
}

TEST(MacAddress, BroadcastIsGroup) {
  EXPECT_TRUE(MacAddress::Broadcast().IsBroadcast());
  EXPECT_TRUE(MacAddress::Broadcast().IsGroup());
}

TEST(MacAddress, Ordering) {
  EXPECT_LT(MacAddress::FromId(1), MacAddress::FromId(2));
  EXPECT_EQ(MacAddress::FromId(7), MacAddress::FromId(7));
}

// --- Units ------------------------------------------------------------------------

TEST(Units, DbmRoundTrip) {
  EXPECT_NEAR(MwToDbm(DbmToMw(-65.0)), -65.0, 1e-9);
  EXPECT_NEAR(DbmToMw(0.0), 1.0, 1e-12);
  EXPECT_NEAR(DbmToMw(10.0), 10.0, 1e-9);
}

TEST(Units, ThermalNoiseFloor) {
  // kTB for 20 MHz at NF 0 dB ≈ -101 dBm.
  const double n = ThermalNoiseW(20e6, 0.0);
  EXPECT_NEAR(WToDbm(n), -101.0, 0.3);
  // A 7 dB noise figure raises it by exactly 7 dB.
  EXPECT_NEAR(WToDbm(ThermalNoiseW(20e6, 7.0)) - WToDbm(n), 7.0, 1e-9);
}

}  // namespace
}  // namespace wlansim
