// Validates the Bianchi analytic model itself and cross-validates the
// simulated DCF MAC against it: the two were built independently (one from
// the JSAC 2000 equations, one from the 802.11 state machine), so agreement
// within model tolerance is strong evidence both are right.

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "mac/frames.h"
#include "stats/bianchi.h"

namespace wlansim {
namespace {

BianchiParams ParamsFor80211b(uint32_t n, size_t payload) {
  const PhyTiming t = TimingFor(PhyStandard::k80211b);
  const WifiMode& data_mode = ModesFor(PhyStandard::k80211b).back();  // 11 Mb/s
  const WifiMode& ctl_mode = ControlResponseMode(data_mode);          // 2 Mb/s

  BianchiParams p;
  p.n_stations = n;
  p.cw_min = t.cw_min;
  p.max_backoff_stages = 5;
  p.slot = t.slot;
  p.sifs = t.sifs;
  p.difs = t.Difs();
  p.data_duration = FrameDuration(data_mode, payload + kDataHeaderSize + kFcsSize);
  p.ack_duration = AckDuration(ctl_mode);
  p.rts_duration = RtsDuration(ctl_mode);
  p.cts_duration = CtsDuration(ctl_mode);
  p.payload_bits = 8.0 * static_cast<double>(payload);
  return p;
}

TEST(Bianchi, FixedPointConverges) {
  const BianchiResult r = SolveBianchi(ParamsFor80211b(10, 1500));
  EXPECT_GT(r.tau, 0.0);
  EXPECT_LT(r.tau, 1.0);
  EXPECT_GT(r.collision_probability, 0.0);
  EXPECT_LT(r.collision_probability, 1.0);
  // Consistency: p = 1 - (1-tau)^(n-1).
  EXPECT_NEAR(r.collision_probability, 1.0 - std::pow(1.0 - r.tau, 9.0), 1e-6);
}

TEST(Bianchi, CollisionProbabilityGrowsWithN) {
  double prev = 0.0;
  for (uint32_t n : {2u, 5u, 10u, 20u, 50u}) {
    const BianchiResult r = SolveBianchi(ParamsFor80211b(n, 1500));
    EXPECT_GT(r.collision_probability, prev);
    prev = r.collision_probability;
  }
}

TEST(Bianchi, ThroughputDecaysWithN) {
  double prev = 1e12;
  for (uint32_t n : {2u, 5u, 10u, 20u, 50u}) {
    const BianchiResult r = SolveBianchi(ParamsFor80211b(n, 1500));
    EXPECT_LT(r.throughput_bps_basic, prev);
    prev = r.throughput_bps_basic;
  }
}

TEST(Bianchi, RtsCtsOvertakesBasicAtHighContention) {
  const BianchiResult few = SolveBianchi(ParamsFor80211b(2, 2304));
  const BianchiResult many = SolveBianchi(ParamsFor80211b(50, 2304));
  EXPECT_GT(few.throughput_bps_basic, few.throughput_bps_rtscts);
  EXPECT_LT(many.throughput_bps_basic, many.throughput_bps_rtscts);
}

TEST(Bianchi, SmallPayloadsNeverJustifyRts) {
  for (uint32_t n : {2u, 10u, 50u}) {
    const BianchiResult r = SolveBianchi(ParamsFor80211b(n, 100));
    EXPECT_GT(r.throughput_bps_basic, r.throughput_bps_rtscts) << "n=" << n;
  }
}

class BianchiVsSimulation : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BianchiVsSimulation, SaturationThroughputAgrees) {
  const uint32_t n = GetParam();
  const BianchiResult analytic = SolveBianchi(ParamsFor80211b(n, 1500));

  SaturationParams sim;
  sim.standard = PhyStandard::k80211b;
  sim.n_stas = n;
  sim.payload = 1500;
  sim.distance = 10.0;
  sim.sim_time = Time::Seconds(4);
  sim.seed = 1000 + n;
  const RunResult measured = RunSaturationScenario(sim);

  // The analytic model idealizes (no PHY errors, slot-synchronized
  // collisions, infinite retries); agreement within 15 % is the standard
  // validation bar for DCF simulators.
  const double analytic_mbps = analytic.throughput_bps_basic / 1e6;
  EXPECT_NEAR(measured.goodput_mbps, analytic_mbps, 0.15 * analytic_mbps)
      << "n=" << n << " sim=" << measured.goodput_mbps << " analytic=" << analytic_mbps;
}

INSTANTIATE_TEST_SUITE_P(StationSweep, BianchiVsSimulation,
                         ::testing::Values(1u, 2u, 5u, 10u, 20u),
                         [](const auto& info) { return "n" + std::to_string(info.param); });

}  // namespace
}  // namespace wlansim
