// PHY tests: PLCP durations against the standard's tables, propagation
// closed forms, fading statistics, error-model orderings, interference
// chunking, and the PHY state machine over a real channel.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include "core/simulator.h"
#include "core/units.h"
#include "phy/channel.h"
#include "phy/error_model.h"
#include "phy/fading.h"
#include "phy/interference.h"
#include "phy/interference_reference.h"
#include "phy/mobility.h"
#include "phy/propagation.h"
#include "phy/wifi_mode.h"
#include "phy/wifi_phy.h"

namespace wlansim {
namespace {

const WifiMode& ModeAt(PhyStandard std_, uint32_t bps) {
  for (const WifiMode& m : ModesFor(std_)) {
    if (m.bit_rate_bps == bps) {
      return m;
    }
  }
  ADD_FAILURE() << "mode not found";
  return BaseModeFor(std_);
}

// --- WifiMode / durations -------------------------------------------------------

TEST(WifiMode, TablesMatchStandardRateSets) {
  EXPECT_EQ(ModesFor(PhyStandard::k80211).size(), 2u);
  EXPECT_EQ(ModesFor(PhyStandard::k80211b).size(), 4u);
  EXPECT_EQ(ModesFor(PhyStandard::k80211a).size(), 8u);
  EXPECT_EQ(ModesFor(PhyStandard::k80211g).size(), 8u);
  EXPECT_EQ(ModesFor(PhyStandard::k80211b).back().bit_rate_bps, 11'000'000u);
  EXPECT_EQ(ModesFor(PhyStandard::k80211a).back().bit_rate_bps, 54'000'000u);
}

TEST(WifiMode, DsssLongPreambleDuration) {
  // 1000 bytes at 11 Mb/s: 192 us PLCP + 8000/11 us payload.
  const Time d = FrameDuration(ModeAt(PhyStandard::k80211b, 11'000'000), 1000);
  EXPECT_NEAR(d.micros(), 192.0 + 8000.0 / 11.0, 0.001);
}

TEST(WifiMode, DsssShortPreambleSaves96us) {
  const WifiMode& m = ModeAt(PhyStandard::k80211b, 11'000'000);
  const Time long_p = FrameDuration(m, 500, false);
  const Time short_p = FrameDuration(m, 500, true);
  EXPECT_NEAR((long_p - short_p).micros(), 96.0, 1e-9);
}

TEST(WifiMode, OneMbpsNeverUsesShortPreamble) {
  const WifiMode& m = ModeAt(PhyStandard::k80211b, 1'000'000);
  EXPECT_EQ(FrameDuration(m, 100, true), FrameDuration(m, 100, false));
}

TEST(WifiMode, OfdmSymbolQuantization) {
  // 802.11a 54 Mb/s: 216 data bits/symbol; 1500 B → (16+12000+6)/216 =
  // 55.66 → 56 symbols → 20 + 224 us.
  const Time d = FrameDuration(ModeAt(PhyStandard::k80211a, 54'000'000), 1500);
  EXPECT_NEAR(d.micros(), 20.0 + 4 * 56, 1e-9);
}

TEST(WifiMode, ErpOfdmAddsSignalExtension) {
  const Time a = FrameDuration(ModeAt(PhyStandard::k80211a, 54'000'000), 1000);
  const Time g = FrameDuration(ModeAt(PhyStandard::k80211g, 54'000'000), 1000);
  EXPECT_NEAR((g - a).micros(), 6.0, 1e-9);
}

TEST(WifiMode, DurationMonotoneInSize) {
  for (const WifiMode& m : ModesFor(PhyStandard::k80211a)) {
    Time prev = Time::Zero();
    for (size_t bytes : {0, 1, 10, 100, 1000, 2304}) {
      const Time d = FrameDuration(m, bytes);
      EXPECT_GE(d, prev) << m.name;
      prev = d;
    }
  }
}

TEST(WifiMode, FasterModesShorterFrames) {
  const auto modes = ModesFor(PhyStandard::k80211a);
  for (size_t i = 1; i < modes.size(); ++i) {
    EXPECT_LT(FrameDuration(modes[i], 1500), FrameDuration(modes[i - 1], 1500));
  }
}

TEST(WifiMode, ControlResponseRates) {
  // Responding to 54 Mb/s OFDM: highest mandatory ≤ 54 is 24 Mb/s.
  EXPECT_EQ(ControlResponseMode(ModeAt(PhyStandard::k80211a, 54'000'000)).bit_rate_bps,
            24'000'000u);
  // Responding to 9 Mb/s: mandatory ≤ 9 is 6.
  EXPECT_EQ(ControlResponseMode(ModeAt(PhyStandard::k80211a, 9'000'000)).bit_rate_bps, 6'000'000u);
  // Responding to 11 Mb/s DSSS: mandatory ≤ 11 is 2.
  EXPECT_EQ(ControlResponseMode(ModeAt(PhyStandard::k80211b, 11'000'000)).bit_rate_bps,
            2'000'000u);
}

TEST(WifiMode, TimingConstants) {
  const PhyTiming b = TimingFor(PhyStandard::k80211b);
  EXPECT_EQ(b.slot, Time::Micros(20));
  EXPECT_EQ(b.sifs, Time::Micros(10));
  EXPECT_EQ(b.Difs(), Time::Micros(50));
  EXPECT_EQ(b.cw_min, 31u);

  const PhyTiming a = TimingFor(PhyStandard::k80211a);
  EXPECT_EQ(a.slot, Time::Micros(9));
  EXPECT_EQ(a.sifs, Time::Micros(16));
  EXPECT_EQ(a.Difs(), Time::Micros(34));
  EXPECT_EQ(a.cw_min, 15u);

  const PhyTiming g_prot = TimingFor(PhyStandard::k80211g, true);
  EXPECT_EQ(g_prot.slot, Time::Micros(20));
  EXPECT_EQ(g_prot.cw_min, 31u);
}

// --- Propagation ----------------------------------------------------------------

TEST(Propagation, FriisClosedForm) {
  FreeSpaceLossModel model;
  // At 2.4 GHz, free-space loss at 100 m ≈ 80.1 dB.
  const double rx = model.RxPowerDbm(20.0, {0, 0, 0}, {100, 0, 0}, 2.4e9, 0);
  EXPECT_NEAR(20.0 - rx, 80.1, 0.2);
}

TEST(Propagation, FriisInverseSquare) {
  FreeSpaceLossModel model;
  const double rx10 = model.RxPowerDbm(0.0, {0, 0, 0}, {10, 0, 0}, 2.4e9, 0);
  const double rx20 = model.RxPowerDbm(0.0, {0, 0, 0}, {20, 0, 0}, 2.4e9, 0);
  EXPECT_NEAR(rx10 - rx20, 6.02, 0.05);  // doubling distance costs 6 dB
}

TEST(Propagation, LogDistanceExponent) {
  LogDistanceLossModel model(3.0);
  const double rx10 = model.RxPowerDbm(0.0, {0, 0, 0}, {10, 0, 0}, 2.4e9, 1);
  const double rx100 = model.RxPowerDbm(0.0, {0, 0, 0}, {100, 0, 0}, 2.4e9, 1);
  EXPECT_NEAR(rx10 - rx100, 30.0, 1e-6);  // 10× distance = 10·n dB
}

TEST(Propagation, ShadowingIsStaticPerLink) {
  LogDistanceLossModel model(3.0, 8.0, 99);
  const double a1 = model.RxPowerDbm(0, {0, 0, 0}, {50, 0, 0}, 2.4e9, 1);
  const double a2 = model.RxPowerDbm(0, {0, 0, 0}, {50, 0, 0}, 2.4e9, 1);
  const double b = model.RxPowerDbm(0, {0, 0, 0}, {50, 0, 0}, 2.4e9, 2);
  EXPECT_EQ(a1, a2);   // same link → same draw
  EXPECT_NE(a1, b);    // different link → different draw (w.h.p.)
}

TEST(Propagation, MatrixLossExactAndSymmetric) {
  MatrixLossModel model(200.0);
  model.SetLoss(1, 2, 80.0);
  const uint64_t l12 = MatrixLossModel::MakeLinkId(1, 2);
  const uint64_t l21 = MatrixLossModel::MakeLinkId(2, 1);
  const uint64_t l13 = MatrixLossModel::MakeLinkId(1, 3);
  EXPECT_NEAR(model.RxPowerDbm(16, {}, {}, 2.4e9, l12), -64.0, 1e-9);
  EXPECT_NEAR(model.RxPowerDbm(16, {}, {}, 2.4e9, l21), -64.0, 1e-9);
  EXPECT_NEAR(model.RxPowerDbm(16, {}, {}, 2.4e9, l13), -184.0, 1e-9);
}

TEST(Propagation, ConstantSpeedDelay) {
  ConstantSpeedDelayModel model;
  const Time d = model.Delay({0, 0, 0}, {300, 0, 0});
  EXPECT_NEAR(d.micros(), 1.0007, 0.001);  // 300 m ≈ 1 us
}

// --- Fading ---------------------------------------------------------------------

TEST(Fading, RayleighUnitMeanExponentialPower) {
  Rng rng(21);
  RayleighFading fading;
  double sum = 0;
  constexpr int kN = 100000;
  int below_mean = 0;
  for (int i = 0; i < kN; ++i) {
    const double g = fading.SampleGain(rng);
    ASSERT_GE(g, 0.0);
    sum += g;
    below_mean += g < 1.0;
  }
  EXPECT_NEAR(sum / kN, 1.0, 0.02);
  // Exponential: P(X < mean) = 1 - 1/e ≈ 0.632.
  EXPECT_NEAR(static_cast<double>(below_mean) / kN, 0.632, 0.01);
}

TEST(Fading, NakagamiMeanOneAndVarianceShrinksWithM) {
  Rng rng(22);
  for (double m : {0.5, 1.0, 4.0}) {
    NakagamiFading fading(m);
    double sum = 0;
    double sq = 0;
    constexpr int kN = 60000;
    for (int i = 0; i < kN; ++i) {
      const double g = fading.SampleGain(rng);
      sum += g;
      sq += g * g;
    }
    const double mean = sum / kN;
    const double var = sq / kN - mean * mean;
    EXPECT_NEAR(mean, 1.0, 0.03) << "m=" << m;
    EXPECT_NEAR(var, 1.0 / m, 0.1 / m + 0.05) << "m=" << m;  // Var = 1/m
  }
}

// --- Error model ------------------------------------------------------------------

TEST(ErrorModel, SuccessMonotoneInSinr) {
  DefaultErrorRateModel model;
  for (const WifiMode& m : ModesFor(PhyStandard::k80211a)) {
    double prev = 0.0;
    for (double snr_db = -5; snr_db <= 35; snr_db += 1) {
      const double p = model.ChunkSuccessProbability(m, DbToRatio(snr_db), 8 * 1000);
      EXPECT_GE(p, prev - 1e-12) << m.name << " at " << snr_db;
      prev = p;
    }
  }
}

TEST(ErrorModel, SuccessDecreasesWithLength) {
  DefaultErrorRateModel model;
  const WifiMode& m = ModeAt(PhyStandard::k80211a, 24'000'000);
  const double sinr = DbToRatio(8.0);
  double prev = 1.0;
  for (uint64_t bits : {100u, 1000u, 10000u, 100000u}) {
    const double p = model.ChunkSuccessProbability(m, sinr, bits);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(ErrorModel, HigherRatesNeedMoreSnr) {
  // The SNR needed for 90 % success of a 1000-byte frame must increase with
  // the data rate within a PHY family.
  DefaultErrorRateModel model;
  auto required_snr_db = [&](const WifiMode& m) {
    for (double snr_db = -10; snr_db <= 40; snr_db += 0.25) {
      if (model.ChunkSuccessProbability(m, DbToRatio(snr_db), 8000) > 0.9) {
        return snr_db;
      }
    }
    return 99.0;
  };
  const auto ofdm = ModesFor(PhyStandard::k80211a);
  for (size_t i = 1; i < ofdm.size(); ++i) {
    EXPECT_GT(required_snr_db(ofdm[i]), required_snr_db(ofdm[i - 1]) - 0.26)
        << ofdm[i].name << " vs " << ofdm[i - 1].name;
  }
  const auto dsss = ModesFor(PhyStandard::k80211b);
  for (size_t i = 1; i < dsss.size(); ++i) {
    EXPECT_GT(required_snr_db(dsss[i]), required_snr_db(dsss[i - 1]))
        << dsss[i].name << " vs " << dsss[i - 1].name;
  }
}

TEST(ErrorModel, ExtremesSaturate) {
  DefaultErrorRateModel model;
  const WifiMode& m = ModeAt(PhyStandard::k80211b, 11'000'000);
  EXPECT_GT(model.ChunkSuccessProbability(m, DbToRatio(30), 8000), 0.9999);
  EXPECT_LT(model.ChunkSuccessProbability(m, DbToRatio(-10), 8000), 1e-6);
  EXPECT_EQ(model.ChunkSuccessProbability(m, 1e9, 0), 1.0);
}

TEST(ErrorModel, QFunctionAnchors) {
  EXPECT_NEAR(QFunction(0.0), 0.5, 1e-12);
  EXPECT_NEAR(QFunction(1.0), 0.1587, 1e-4);
  EXPECT_NEAR(QFunction(3.0), 0.00135, 1e-5);
}

// --- Interference tracker -----------------------------------------------------------

TEST(Interference, TotalPowerSumsOverlaps) {
  InterferenceTracker tracker;
  tracker.AddSignal(Time::Micros(0), Time::Micros(100), 1e-9);
  tracker.AddSignal(Time::Micros(50), Time::Micros(150), 2e-9);
  EXPECT_NEAR(tracker.TotalPowerW(Time::Micros(25)), 1e-9, 1e-15);
  EXPECT_NEAR(tracker.TotalPowerW(Time::Micros(75)), 3e-9, 1e-15);
  EXPECT_NEAR(tracker.TotalPowerW(Time::Micros(125)), 2e-9, 1e-15);
  EXPECT_NEAR(tracker.TotalPowerW(Time::Micros(200)), 0.0, 1e-18);
}

TEST(Interference, TimeWhenPowerBelow) {
  InterferenceTracker tracker;
  tracker.AddSignal(Time::Micros(0), Time::Micros(100), 1e-9);
  tracker.AddSignal(Time::Micros(0), Time::Micros(60), 1e-9);
  const Time t = tracker.TimeWhenPowerBelow(Time::Micros(10), 1.5e-9);
  EXPECT_EQ(t, Time::Micros(60));
}

TEST(Interference, CleanChannelHighSnrSucceeds) {
  InterferenceTracker tracker;
  DefaultErrorRateModel model;
  const WifiMode& mode = ModeAt(PhyStandard::k80211b, 11'000'000);
  const uint64_t id = tracker.AddSignal(Time::Zero(), Time::Micros(1000), DbmToW(-60));
  InterferenceTracker::ReceptionPlan plan;
  plan.signal_id = id;
  plan.start = Time::Zero();
  plan.payload_start = Time::Micros(192);
  plan.end = Time::Micros(1000);
  plan.header_mode = BaseModeFor(PhyStandard::k80211b);
  plan.payload_mode = mode;
  plan.header_bits = 48;
  plan.payload_bits = 8000;
  plan.noise_w = DbmToW(-94);
  EXPECT_GT(tracker.SuccessProbability(plan, model), 0.999);
  EXPECT_NEAR(RatioToDb(tracker.MeanSinr(plan)), 34.0, 0.5);
}

TEST(Interference, StrongOverlapKillsReception) {
  InterferenceTracker tracker;
  DefaultErrorRateModel model;
  const WifiMode& mode = ModeAt(PhyStandard::k80211b, 11'000'000);
  const uint64_t id = tracker.AddSignal(Time::Zero(), Time::Micros(1000), DbmToW(-60));
  tracker.AddSignal(Time::Micros(300), Time::Micros(700), DbmToW(-60));  // equal-power collider
  InterferenceTracker::ReceptionPlan plan;
  plan.signal_id = id;
  plan.start = Time::Zero();
  plan.payload_start = Time::Micros(192);
  plan.end = Time::Micros(1000);
  plan.header_mode = BaseModeFor(PhyStandard::k80211b);
  plan.payload_mode = mode;
  plan.header_bits = 48;
  plan.payload_bits = 8000;
  plan.noise_w = DbmToW(-94);
  EXPECT_LT(tracker.SuccessProbability(plan, model), 1e-6);
}

TEST(Interference, PartialOverlapOnlyDegradesChunk) {
  InterferenceTracker tracker;
  DefaultErrorRateModel model;
  const WifiMode& mode = ModeAt(PhyStandard::k80211b, 1'000'000);
  const uint64_t id = tracker.AddSignal(Time::Zero(), Time::Millis(8), DbmToW(-60));
  // Weak interferer overlapping 10% of the frame: SINR in that chunk is
  // still 20 dB, so the frame survives.
  tracker.AddSignal(Time::Micros(100), Time::Micros(900), DbmToW(-80));
  InterferenceTracker::ReceptionPlan plan;
  plan.signal_id = id;
  plan.start = Time::Zero();
  plan.payload_start = Time::Micros(192);
  plan.end = Time::Millis(8);
  plan.header_mode = BaseModeFor(PhyStandard::k80211b);
  plan.payload_mode = mode;
  plan.header_bits = 48;
  plan.payload_bits = 8000;
  plan.noise_w = DbmToW(-94);
  EXPECT_GT(tracker.SuccessProbability(plan, model), 0.99);
}

TEST(Interference, CleanupDropsExpired) {
  InterferenceTracker tracker;
  tracker.AddSignal(Time::Micros(0), Time::Micros(10), 1e-9);
  tracker.AddSignal(Time::Micros(0), Time::Micros(1000), 1e-9);
  tracker.Cleanup(Time::Micros(500));
  EXPECT_EQ(tracker.ActiveSignalCount(), 1u);
}

TEST(Interference, EvaluateReceptionMatchesSeparateQueries) {
  InterferenceTracker tracker;
  DefaultErrorRateModel model;
  const uint64_t id = tracker.AddSignal(Time::Zero(), Time::Micros(1000), DbmToW(-60));
  tracker.AddSignal(Time::Micros(100), Time::Micros(400), DbmToW(-75));
  tracker.AddSignal(Time::Micros(300), Time::Micros(900), DbmToW(-82));
  InterferenceTracker::ReceptionPlan plan;
  plan.signal_id = id;
  plan.start = Time::Zero();
  plan.payload_start = Time::Micros(192);
  plan.end = Time::Micros(1000);
  plan.header_mode = BaseModeFor(PhyStandard::k80211b);
  plan.payload_mode = ModeAt(PhyStandard::k80211b, 11'000'000);
  plan.header_bits = 48;
  plan.payload_bits = 8000;
  plan.noise_w = DbmToW(-94);
  const auto stats = tracker.EvaluateReception(plan, model);
  EXPECT_EQ(stats.success_probability, tracker.SuccessProbability(plan, model));
  EXPECT_EQ(stats.mean_sinr, tracker.MeanSinr(plan));
}

TEST(Interference, AutoExpiryMatchesLegacyPurgeTrigger) {
  // The tracker must reproduce the legacy caller-side policy exactly: prune
  // only once MORE than 64 signals are stored, dropping everything that
  // ended at or before the triggering arrival's start.
  InterferenceTracker tracker;
  for (int i = 0; i < 64; ++i) {
    tracker.AddSignal(Time::Micros(i), Time::Micros(i + 1), 1e-9);
  }
  EXPECT_EQ(tracker.ActiveSignalCount(), 64u);  // at threshold: no purge yet
  tracker.AddSignal(Time::Micros(1000), Time::Micros(1001), 1e-9);
  EXPECT_EQ(tracker.ActiveSignalCount(), 1u);  // 65th add purged the 64 ended
  EXPECT_EQ(tracker.stats().cleanup_drops, 64u);
}

TEST(Interference, PinnedSignalSurvivesExpiry) {
  InterferenceTracker tracker;
  const uint64_t pinned = tracker.AddSignal(Time::Micros(0), Time::Micros(10), 1e-9);
  tracker.PinSignal(pinned);
  for (int i = 0; i < 70; ++i) {
    tracker.AddSignal(Time::Micros(20 + i), Time::Micros(21 + i), 1e-9);
  }
  // Every unpinned ended signal is gone; the pinned one must remain even
  // though it ended long before the expiry horizon.
  InterferenceTracker::ReceptionPlan plan;
  plan.signal_id = pinned;
  plan.start = Time::Micros(0);
  plan.payload_start = Time::Micros(2);
  plan.end = Time::Micros(10);
  plan.header_mode = BaseModeFor(PhyStandard::k80211b);
  plan.payload_mode = BaseModeFor(PhyStandard::k80211b);
  plan.header_bits = 48;
  plan.payload_bits = 80;
  plan.noise_w = DbmToW(-94);
  DefaultErrorRateModel model;
  EXPECT_GT(tracker.SuccessProbability(plan, model), 0.0);
  const size_t with_pinned = tracker.ActiveSignalCount();
  tracker.UnpinSignal();
  // An explicit Cleanup ignores the (now released) pin and drops it.
  tracker.Cleanup(Time::Micros(10));
  EXPECT_EQ(tracker.ActiveSignalCount(), with_pinned - 1);
}

TEST(Interference, TimeWhenPowerBelowContract) {
  InterferenceTracker tracker;
  ReferenceInterferenceTracker reference;
  // No signals: already-below returns t.
  EXPECT_EQ(tracker.TimeWhenPowerBelow(Time::Micros(5), 1e-12), Time::Micros(5));
  tracker.AddSignal(Time::Micros(0), Time::Micros(100), 1e-9);
  tracker.AddSignal(Time::Micros(50), Time::Micros(300), 2e-9);
  reference.AddSignal(Time::Micros(0), Time::Micros(100), 1e-9);
  reference.AddSignal(Time::Micros(50), Time::Micros(300), 2e-9);
  // threshold <= 0: no instant qualifies; the documented contract is the
  // first instant after every known signal has ended (signals are
  // half-open, so that is the latest end) — on both implementations.
  EXPECT_EQ(tracker.TimeWhenPowerBelow(Time::Micros(10), 0.0), Time::Micros(300));
  EXPECT_EQ(reference.TimeWhenPowerBelow(Time::Micros(10), 0.0), Time::Micros(300));
}

TEST(Interference, StatsCountersAdvance) {
  InterferenceTracker tracker;
  DefaultErrorRateModel model;
  const uint64_t id = tracker.AddSignal(Time::Zero(), Time::Micros(1000), DbmToW(-60));
  tracker.AddSignal(Time::Micros(200), Time::Micros(600), DbmToW(-80));
  tracker.TotalPowerW(Time::Micros(100));
  EXPECT_GT(tracker.stats().signals_scanned, 0u);
  InterferenceTracker::ReceptionPlan plan;
  plan.signal_id = id;
  plan.start = Time::Zero();
  plan.payload_start = Time::Micros(192);
  plan.end = Time::Micros(1000);
  plan.header_mode = BaseModeFor(PhyStandard::k80211b);
  plan.payload_mode = BaseModeFor(PhyStandard::k80211b);
  plan.header_bits = 48;
  plan.payload_bits = 8000;
  plan.noise_w = DbmToW(-94);
  tracker.SuccessProbability(plan, model);
  // The fused sweep emits spans split at the interferer's start and end.
  EXPECT_GE(tracker.stats().chunks_computed, 3u);
  EXPECT_GE(tracker.stats().timeline_merges, 1u);
}

// --- Differential: sweep-line tracker vs the preserved reference ---------------

// The sweep-line tracker must be bit-identical to the naive implementation
// on every query: same chunk boundaries, same id-ordered power folds. All
// comparisons below are EXACT double equality, not approximate.
class InterferenceDifferential {
 public:
  explicit InterferenceDifferential(uint64_t seed) : rng_(seed) {}

  // Adds the same signal to both trackers, mirroring the tracker's internal
  // legacy purge onto the reference so both keep the identical live set.
  uint64_t Add(Time start, Time end, double power_w) {
    const uint64_t id = tracker_.AddSignal(start, end, power_w);
    const uint64_t ref_id = reference_.AddSignal(start, end, power_w);
    EXPECT_EQ(id, ref_id);
    if (reference_.ActiveSignalCount() > 64) {
      reference_.Cleanup(start);
    }
    EXPECT_EQ(tracker_.ActiveSignalCount(), reference_.ActiveSignalCount());
    live_.push_back({id, start, end});
    return id;
  }

  void CompareAt(Time t) {
    EXPECT_EQ(tracker_.TotalPowerW(t), reference_.TotalPowerW(t)) << "t=" << t.ToString();
    for (const double threshold : {1e-7, 1e-9, 5e-10, 1e-12, 0.0}) {
      EXPECT_EQ(tracker_.TimeWhenPowerBelow(t, threshold),
                reference_.TimeWhenPowerBelow(t, threshold))
          << "t=" << t.ToString() << " thr=" << threshold;
    }
  }

  void ComparePlan(const InterferenceTracker::ReceptionPlan& plan) {
    EXPECT_EQ(tracker_.SuccessProbability(plan, model_),
              reference_.SuccessProbability(plan, model_));
    EXPECT_EQ(tracker_.MeanSinr(plan), reference_.MeanSinr(plan));
    const auto stats = tracker_.EvaluateReception(plan, model_);
    EXPECT_EQ(stats.success_probability, reference_.SuccessProbability(plan, model_));
    EXPECT_EQ(stats.mean_sinr, reference_.MeanSinr(plan));
  }

  InterferenceTracker::ReceptionPlan PlanFor(uint64_t id, Time start, Time end,
                                             Time payload_start) {
    InterferenceTracker::ReceptionPlan plan;
    plan.signal_id = id;
    plan.start = start;
    plan.payload_start = payload_start;
    plan.end = end;
    plan.header_mode = BaseModeFor(PhyStandard::k80211b);
    plan.payload_mode = ModesFor(PhyStandard::k80211b).back();
    plan.header_bits = 48;
    plan.payload_bits = 8000;
    plan.noise_w = DbmToW(-94);
    return plan;
  }

  Rng& rng() { return rng_; }
  const std::vector<std::tuple<uint64_t, Time, Time>>& live() const { return live_; }

 private:
  Rng rng_;
  DefaultErrorRateModel model_;
  InterferenceTracker tracker_;
  ReferenceInterferenceTracker reference_;
  std::vector<std::tuple<uint64_t, Time, Time>> live_;
};

TEST(InterferenceDifferentialTest, RandomSignalSetsMatchExactly) {
  InterferenceDifferential diff(2024);
  Rng& rng = diff.rng();
  Time now = Time::Zero();
  for (int step = 0; step < 300; ++step) {
    now += Time::Micros(rng.UniformInt(0, 400));  // duplicate starts possible
    const Time duration = Time::Micros(rng.UniformInt(0, 1500));  // zero-length possible
    const uint64_t id = diff.Add(now, now + duration, DbmToW(rng.Uniform(-95.0, -45.0)));

    if (step % 3 == 0) {
      diff.CompareAt(now);
      diff.CompareAt(now + Time::Micros(rng.UniformInt(0, 2000)));
    }
    if (step % 5 == 0 && !duration.IsZero()) {
      // Reception plan over the just-added signal with a random header
      // split (clamped into the window; sometimes degenerate).
      const Time ps = now + Time::Micros(rng.UniformInt(0, duration.picos() / 1'000'000));
      diff.ComparePlan(diff.PlanFor(id, now, now + duration, ps));
    }
    if (step % 7 == 0 && diff.live().size() > 3) {
      // Re-evaluate an older signal still in both trackers: windows that
      // span many later arrivals and expiries.
      const auto& [old_id, old_start, old_end] =
          diff.live()[diff.live().size() - 1 -
                      static_cast<size_t>(rng.UniformInt(0, 2))];
      if (old_end > now && old_end > old_start) {
        diff.ComparePlan(diff.PlanFor(old_id, old_start, old_end,
                                      old_start + (old_end - old_start) / 4));
      }
    }
  }
}

TEST(InterferenceDifferentialTest, ChunkBoundaryEdgeCases) {
  InterferenceDifferential diff(7);
  const Time start = Time::Micros(0);
  const Time ps = Time::Micros(192);
  const Time end = Time::Micros(1000);
  const uint64_t self = diff.Add(start, end, DbmToW(-60));
  // A signal ending exactly at payload_start, one starting exactly there,
  // duplicate change points (two equal signals), a signal abutting another
  // (A.end == B.start), and a zero-length signal inside the payload.
  diff.Add(Time::Micros(50), ps, DbmToW(-70));
  diff.Add(ps, Time::Micros(400), DbmToW(-72));
  diff.Add(Time::Micros(300), Time::Micros(500), DbmToW(-74));
  diff.Add(Time::Micros(300), Time::Micros(500), DbmToW(-76));
  diff.Add(Time::Micros(500), Time::Micros(700), DbmToW(-78));
  diff.Add(Time::Micros(600), Time::Micros(600), DbmToW(-50));
  diff.ComparePlan(diff.PlanFor(self, start, end, ps));
  // Degenerate windows: empty header (ps == start) and empty payload
  // (ps == end).
  diff.ComparePlan(diff.PlanFor(self, start, end, start));
  diff.ComparePlan(diff.PlanFor(self, start, end, end));
  diff.CompareAt(Time::Micros(300));
  diff.CompareAt(Time::Micros(600));
  diff.CompareAt(Time::Micros(999));
}

// --- WifiPhy over a channel ---------------------------------------------------------

struct PhyFixture {
  Simulator sim;
  Channel channel{&sim, std::make_unique<LogDistanceLossModel>(3.0), Rng(1)};
  ConstantPositionMobility pos_a{{0, 0, 0}};
  ConstantPositionMobility pos_b{{10, 0, 0}};
  WifiPhy a{&sim, {}, Rng(2)};
  WifiPhy b{&sim, {}, Rng(3)};

  PhyFixture() {
    a.AttachChannel(&channel, 0, &pos_a);
    b.AttachChannel(&channel, 1, &pos_b);
  }
};

TEST(WifiPhy, DeliversFrameWithRssiAndSuccess) {
  PhyFixture f;
  int received = 0;
  RxInfo last_info;
  f.b.SetReceiveCallback([&](Packet p, const RxInfo& info) {
    ++received;
    last_info = info;
    EXPECT_EQ(p.size(), 100u);
  });
  Packet packet(100);
  f.sim.Schedule(Time::Zero(), [&] {
    f.a.StartTx(packet, BaseModeFor(PhyStandard::k80211b));
  });
  f.sim.Run();
  EXPECT_EQ(received, 1);
  EXPECT_TRUE(last_info.success);
  // Log-distance at 10 m, n=3: 40 dB @1m + 30 dB = 70 dB below 16 dBm.
  EXPECT_NEAR(last_info.rssi_dbm, 16.0 - 70.1, 1.0);
}

TEST(WifiPhy, HalfDuplexTransmitterHearsNothing) {
  PhyFixture f;
  int received_at_a = 0;
  f.a.SetReceiveCallback([&](Packet, const RxInfo&) { ++received_at_a; });
  Packet p1(500);
  Packet p2(500);
  f.sim.Schedule(Time::Zero(), [&] { f.a.StartTx(p1, BaseModeFor(PhyStandard::k80211b)); });
  // b transmits while a is still transmitting: a must not receive it.
  f.sim.Schedule(Time::Micros(100), [&] { f.b.StartTx(p2, BaseModeFor(PhyStandard::k80211b)); });
  f.sim.Run();
  EXPECT_EQ(received_at_a, 0);
  EXPECT_EQ(f.a.counters().rx_dropped_busy, 1u);
}

TEST(WifiPhy, StateTransitionsIdleTxIdle) {
  PhyFixture f;
  Packet p(100);
  EXPECT_EQ(f.a.state(), WifiPhy::State::kIdle);
  f.sim.Schedule(Time::Zero(), [&] {
    f.a.StartTx(p, BaseModeFor(PhyStandard::k80211b));
    EXPECT_EQ(f.a.state(), WifiPhy::State::kTx);
  });
  f.sim.Run();
  EXPECT_EQ(f.a.state(), WifiPhy::State::kIdle);
}

TEST(WifiPhy, ListenerSeesRxStartAndEnd) {
  struct Recorder : PhyListener {
    int rx_start = 0;
    int rx_end_ok = 0;
    int rx_end_err = 0;
    int tx_start = 0;
    int cca = 0;
    void NotifyRxStart(Time) override { ++rx_start; }
    void NotifyRxEnd(bool ok) override { ok ? ++rx_end_ok : ++rx_end_err; }
    void NotifyTxStart(Time) override { ++tx_start; }
    void NotifyCcaBusyStart(Time) override { ++cca; }
  };
  PhyFixture f;
  Recorder rec;
  f.b.SetListener(&rec);
  Packet p(200);
  f.sim.Schedule(Time::Zero(), [&] { f.a.StartTx(p, BaseModeFor(PhyStandard::k80211b)); });
  f.sim.Run();
  EXPECT_EQ(rec.rx_start, 1);
  EXPECT_EQ(rec.rx_end_ok, 1);
  EXPECT_EQ(rec.rx_end_err, 0);
}

TEST(WifiPhy, WeakSignalBelowPreambleDetectIgnored) {
  Simulator sim;
  Channel channel{&sim, std::make_unique<LogDistanceLossModel>(4.0), Rng(1)};
  ConstantPositionMobility pos_a{{0, 0, 0}};
  ConstantPositionMobility pos_b{{4000, 0, 0}};  // ~184 dB loss at n=4
  WifiPhy a{&sim, {}, Rng(2)};
  WifiPhy b{&sim, {}, Rng(3)};
  a.AttachChannel(&channel, 0, &pos_a);
  b.AttachChannel(&channel, 1, &pos_b);
  int received = 0;
  b.SetReceiveCallback([&](Packet, const RxInfo&) { ++received; });
  Packet p(100);
  sim.Schedule(Time::Zero(), [&] { a.StartTx(p, BaseModeFor(PhyStandard::k80211b)); });
  sim.Run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(b.state(), WifiPhy::State::kIdle);
}

TEST(WifiPhy, CaptureStealsReceiverDuringPreamble) {
  Simulator sim;
  auto loss = std::make_unique<MatrixLossModel>(200.0);
  MatrixLossModel* matrix = loss.get();
  matrix->SetLoss(0, 2, 90.0);   // weak first arrival: -74 dBm
  matrix->SetLoss(1, 2, 60.0);   // strong newcomer:    -44 dBm
  Channel channel{&sim, std::move(loss), Rng(1)};
  ConstantPositionMobility pa{{0, 0, 0}};
  ConstantPositionMobility pb{{1, 0, 0}};
  ConstantPositionMobility pc{{2, 0, 0}};
  WifiPhy a{&sim, {}, Rng(2)};
  WifiPhy b{&sim, {}, Rng(3)};
  WifiPhy c{&sim, {}, Rng(4)};
  a.AttachChannel(&channel, 0, &pa);
  b.AttachChannel(&channel, 1, &pb);
  c.AttachChannel(&channel, 2, &pc);
  int delivered = 0;
  double rssi = 0;
  c.SetReceiveCallback([&](Packet, const RxInfo& info) {
    if (info.success) {
      ++delivered;
      rssi = info.rssi_dbm;
    }
  });
  Packet p1(500);
  Packet p2(500);
  sim.Schedule(Time::Zero(), [&] { a.StartTx(p1, BaseModeFor(PhyStandard::k80211b)); });
  // Arrives 50 us later, still inside the 192 us DSSS preamble, 30 dB louder.
  sim.Schedule(Time::Micros(50), [&] { b.StartTx(p2, BaseModeFor(PhyStandard::k80211b)); });
  sim.Run();
  EXPECT_EQ(c.counters().rx_captured, 1u);
  EXPECT_EQ(delivered, 1);
  EXPECT_NEAR(rssi, -44.0, 0.5);  // the captured (strong) frame won
}

TEST(WifiPhy, ChannelNumberIsolation) {
  PhyFixture f;
  f.b.SetChannelNumber(6);
  int received = 0;
  f.b.SetReceiveCallback([&](Packet, const RxInfo&) { ++received; });
  Packet p(100);
  f.sim.Schedule(Time::Zero(), [&] { f.a.StartTx(p, BaseModeFor(PhyStandard::k80211b)); });
  f.sim.Run();
  EXPECT_EQ(received, 0);
}

// --- Channel link cache --------------------------------------------------------

TEST(LinkCache, StaticLinkCachedAndTeleportInvalidates) {
  PhyFixture f;
  std::vector<double> rssi;
  f.b.SetReceiveCallback([&](Packet, const RxInfo& info) { rssi.push_back(info.rssi_dbm); });
  Packet p(100);
  auto tx = [&] { f.a.StartTx(p, BaseModeFor(PhyStandard::k80211b)); };
  f.sim.Schedule(Time::Millis(0), tx);
  f.sim.Schedule(Time::Millis(5), tx);   // second send: cache hit
  f.sim.Schedule(Time::Millis(10), [&] {
    // Teleport the receiver mid-campaign: its position epoch bumps, so the
    // cached row must go stale without any explicit invalidation call.
    f.pos_b.SetPosition({100, 0, 0});
    tx();
  });
  f.sim.Schedule(Time::Millis(15), tx);  // re-cached at the new position
  f.sim.Run();

  ASSERT_EQ(rssi.size(), 4u);
  EXPECT_DOUBLE_EQ(rssi[0], rssi[1]);  // memoized value is bit-exact
  // Log-distance n=3: moving 10 m -> 100 m adds 30 dB of path loss.
  EXPECT_NEAR(rssi[0] - rssi[2], 30.0, 0.1);
  EXPECT_DOUBLE_EQ(rssi[2], rssi[3]);
  EXPECT_EQ(f.channel.cache_stats().hits, 2u);    // sends 2 and 4
  EXPECT_EQ(f.channel.cache_stats().misses, 2u);  // sends 1 and 3
}

TEST(LinkCache, LossModelMutationInvalidatesAutomatically) {
  Simulator sim;
  auto loss = std::make_unique<MatrixLossModel>(200.0);
  MatrixLossModel* matrix = loss.get();
  matrix->SetLoss(0, 1, 60.0);
  Channel channel{&sim, std::move(loss), Rng(1)};
  ConstantPositionMobility pa{{0, 0, 0}};
  ConstantPositionMobility pb{{5, 0, 0}};
  WifiPhy a{&sim, {}, Rng(2)};
  WifiPhy b{&sim, {}, Rng(3)};
  a.AttachChannel(&channel, 0, &pa);
  b.AttachChannel(&channel, 1, &pb);
  std::vector<double> rssi;
  b.SetReceiveCallback([&](Packet, const RxInfo& info) { rssi.push_back(info.rssi_dbm); });
  Packet p(100);
  sim.Schedule(Time::Millis(0), [&] { a.StartTx(p, BaseModeFor(PhyStandard::k80211b)); });
  sim.Schedule(Time::Millis(5), [&] {
    // Both endpoints are static, so only the loss model's mutation epoch
    // can (and must) invalidate the cached row — no explicit call needed.
    matrix->SetLoss(0, 1, 80.0);
    a.StartTx(p, BaseModeFor(PhyStandard::k80211b));
  });
  sim.Run();
  ASSERT_EQ(rssi.size(), 2u);
  EXPECT_NEAR(rssi[0], 16.0 - 60.0, 1e-9);
  EXPECT_NEAR(rssi[1], 16.0 - 80.0, 1e-9);
}

TEST(LinkCache, MovingReceiverBypassesCache) {
  Simulator sim;
  Channel channel{&sim, std::make_unique<LogDistanceLossModel>(3.0), Rng(1)};
  ConstantPositionMobility pos_a{{0, 0, 0}};
  ConstantVelocityMobility pos_b{{10, 0, 0}, {100, 0, 0}};  // 100 m/s away
  WifiPhy a{&sim, {}, Rng(2)};
  WifiPhy b{&sim, {}, Rng(3)};
  a.AttachChannel(&channel, 0, &pos_a);
  b.AttachChannel(&channel, 1, &pos_b);
  std::vector<double> rssi;
  b.SetReceiveCallback([&](Packet, const RxInfo& info) { rssi.push_back(info.rssi_dbm); });
  Packet p(100);
  auto tx = [&] { a.StartTx(p, BaseModeFor(PhyStandard::k80211b)); };
  sim.Schedule(Time::Millis(0), tx);
  sim.Schedule(Time::Millis(100), tx);  // receiver has moved 10 m -> 20 m
  sim.Run();

  ASSERT_EQ(rssi.size(), 2u);
  EXPECT_EQ(channel.cache_stats().hits, 0u);  // moving endpoint: never cached
  EXPECT_EQ(channel.cache_stats().misses, 2u);
  // Doubling the distance under n=3 costs 30 log10(2) ~ 9 dB.
  EXPECT_NEAR(rssi[0] - rssi[1], 9.03, 0.2);
}

}  // namespace
}  // namespace wlansim
