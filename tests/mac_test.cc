// MAC-layer unit tests: frame codec round trips, FCS integrity, management
// bodies, the transmit queue, DCF channel-access timing, NAV, and EIFS.

#include <gtest/gtest.h>

#include <vector>

#include "core/simulator.h"
#include "mac/channel_access.h"
#include "mac/frames.h"
#include "mac/mac_queue.h"

namespace wlansim {
namespace {

// --- Frame codec ----------------------------------------------------------------

TEST(Frames, DataHeaderRoundTrip) {
  MacHeader h;
  h.type = FrameType::kData;
  h.subtype = FrameSubtype::kData;
  h.to_ds = true;
  h.retry = true;
  h.protected_frame = true;
  h.duration_us = 314;
  h.addr1 = MacAddress::FromId(1);
  h.addr2 = MacAddress::FromId(2);
  h.addr3 = MacAddress::FromId(3);
  h.sequence = 0x0ABC;
  h.fragment = 5;

  std::vector<uint8_t> wire;
  h.Serialize(wire);
  EXPECT_EQ(wire.size(), 24u);

  auto parsed = MacHeader::Deserialize(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, FrameType::kData);
  EXPECT_TRUE(parsed->to_ds);
  EXPECT_FALSE(parsed->from_ds);
  EXPECT_TRUE(parsed->retry);
  EXPECT_TRUE(parsed->protected_frame);
  EXPECT_EQ(parsed->duration_us, 314);
  EXPECT_EQ(parsed->addr1, MacAddress::FromId(1));
  EXPECT_EQ(parsed->addr2, MacAddress::FromId(2));
  EXPECT_EQ(parsed->addr3, MacAddress::FromId(3));
  EXPECT_EQ(parsed->sequence, 0x0ABC);
  EXPECT_EQ(parsed->fragment, 5);
}

TEST(Frames, ControlFrameSizes) {
  MacHeader rts;
  rts.type = FrameType::kControl;
  rts.subtype = FrameSubtype::kRts;
  EXPECT_EQ(rts.SerializedSize(), 16u);

  MacHeader cts;
  cts.type = FrameType::kControl;
  cts.subtype = FrameSubtype::kCts;
  EXPECT_EQ(cts.SerializedSize(), 10u);

  MacHeader ack;
  ack.type = FrameType::kControl;
  ack.subtype = FrameSubtype::kAck;
  EXPECT_EQ(ack.SerializedSize(), 10u);

  MacHeader beacon;
  beacon.type = FrameType::kManagement;
  beacon.subtype = FrameSubtype::kBeacon;
  EXPECT_EQ(beacon.SerializedSize(), 24u);
}

TEST(Frames, CtsAckRoundTrip) {
  MacHeader ack;
  ack.type = FrameType::kControl;
  ack.subtype = FrameSubtype::kAck;
  ack.addr1 = MacAddress::FromId(9);
  std::vector<uint8_t> wire;
  ack.Serialize(wire);
  EXPECT_EQ(wire.size(), 10u);
  auto parsed = MacHeader::Deserialize(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->IsCtl(FrameSubtype::kAck));
  EXPECT_EQ(parsed->addr1, MacAddress::FromId(9));
}

TEST(Frames, MpduBuildParseRoundTrip) {
  MacHeader h;
  h.type = FrameType::kData;
  h.addr1 = MacAddress::FromId(1);
  h.addr2 = MacAddress::FromId(2);
  h.addr3 = MacAddress::FromId(3);
  const std::vector<uint8_t> body = {10, 20, 30, 40, 50};
  PacketMeta meta;
  meta.flow_id = 77;
  Packet mpdu = BuildMpdu(h, body, meta);
  EXPECT_EQ(mpdu.size(), 24 + 5 + 4u);
  EXPECT_EQ(mpdu.meta().flow_id, 77u);

  auto parsed = ParseMpdu(mpdu);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->addr2, MacAddress::FromId(2));
  EXPECT_EQ(mpdu.size(), 5u);
  EXPECT_EQ(mpdu.bytes()[0], 10);
  EXPECT_EQ(mpdu.bytes()[4], 50);
}

TEST(Frames, CorruptedFcsRejected) {
  MacHeader h;
  h.type = FrameType::kData;
  const std::vector<uint8_t> body(64, 0x7E);
  Packet mpdu = BuildMpdu(h, body);
  // Flip one payload bit: the FCS check must fail.
  mpdu.mutable_bytes()[30] ^= 0x10;
  EXPECT_FALSE(ParseMpdu(mpdu).has_value());
}

TEST(Frames, TruncatedFrameRejected) {
  Packet tiny(std::vector<uint8_t>{1, 2, 3});
  EXPECT_FALSE(ParseMpdu(tiny).has_value());
}

TEST(Frames, BeaconBodyRoundTrip) {
  BeaconBody b;
  b.timestamp_us = 123456789;
  b.beacon_interval_tu = 100;
  b.ssid = "corp-net";
  b.channel = 11;
  const auto wire = b.Serialize();
  auto parsed = BeaconBody::Deserialize(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->timestamp_us, 123456789u);
  EXPECT_EQ(parsed->ssid, "corp-net");
  EXPECT_EQ(parsed->channel, 11);
}

TEST(Frames, AssocBodiesRoundTrip) {
  AssocRequestBody req;
  req.ssid = "x";
  auto parsed_req = AssocRequestBody::Deserialize(req.Serialize());
  ASSERT_TRUE(parsed_req.has_value());
  EXPECT_EQ(parsed_req->ssid, "x");

  AssocResponseBody resp;
  resp.status = 0;
  resp.aid = 7;
  auto parsed_resp = AssocResponseBody::Deserialize(resp.Serialize());
  ASSERT_TRUE(parsed_resp.has_value());
  EXPECT_EQ(parsed_resp->aid, 7);

  AuthBody auth;
  auth.sequence = 2;
  auto parsed_auth = AuthBody::Deserialize(auth.Serialize());
  ASSERT_TRUE(parsed_auth.has_value());
  EXPECT_EQ(parsed_auth->sequence, 2);
}

TEST(Frames, SequenceNumberWraps) {
  MacHeader h;
  h.type = FrameType::kData;
  h.sequence = 4095;
  h.fragment = 15;
  std::vector<uint8_t> wire;
  h.Serialize(wire);
  auto parsed = MacHeader::Deserialize(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->sequence, 4095);
  EXPECT_EQ(parsed->fragment, 15);
}

// Property sweep: every (type, subtype, flag combo) round-trips.
class HeaderFlagSweep : public ::testing::TestWithParam<int> {};

TEST_P(HeaderFlagSweep, FlagsRoundTrip) {
  const int bits = GetParam();
  MacHeader h;
  h.type = FrameType::kData;
  h.to_ds = bits & 1;
  h.from_ds = bits & 2;
  h.more_fragments = bits & 4;
  h.retry = bits & 8;
  h.power_mgmt = bits & 16;
  h.more_data = bits & 32;
  h.protected_frame = bits & 64;
  h.order = bits & 128;
  std::vector<uint8_t> wire;
  h.Serialize(wire);
  auto parsed = MacHeader::Deserialize(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_ds, h.to_ds);
  EXPECT_EQ(parsed->from_ds, h.from_ds);
  EXPECT_EQ(parsed->more_fragments, h.more_fragments);
  EXPECT_EQ(parsed->retry, h.retry);
  EXPECT_EQ(parsed->power_mgmt, h.power_mgmt);
  EXPECT_EQ(parsed->more_data, h.more_data);
  EXPECT_EQ(parsed->protected_frame, h.protected_frame);
  EXPECT_EQ(parsed->order, h.order);
}

INSTANTIATE_TEST_SUITE_P(AllFlagCombos, HeaderFlagSweep, ::testing::Range(0, 256));

// --- MacQueue --------------------------------------------------------------------

TEST(MacQueue, FifoOrder) {
  MacQueue q(8);
  for (uint32_t i = 0; i < 3; ++i) {
    MacQueue::Item item;
    item.msdu = Packet(i + 1);
    q.Enqueue(std::move(item));
  }
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.Dequeue()->msdu.size(), 1u);
  EXPECT_EQ(q.Dequeue()->msdu.size(), 2u);
  EXPECT_EQ(q.Dequeue()->msdu.size(), 3u);
  EXPECT_FALSE(q.Dequeue().has_value());
}

TEST(MacQueue, DropTailWhenFull) {
  MacQueue q(2);
  EXPECT_TRUE(q.Enqueue({}));
  EXPECT_TRUE(q.Enqueue({}));
  EXPECT_FALSE(q.Enqueue({}));
  EXPECT_EQ(q.drops(), 1u);
}

TEST(MacQueue, FrontEnqueueJumpsQueue) {
  MacQueue q(8);
  MacQueue::Item data;
  data.msdu = Packet(100);
  q.Enqueue(std::move(data));
  MacQueue::Item mgmt;
  mgmt.msdu = Packet(10);
  mgmt.is_management = true;
  q.EnqueueFront(std::move(mgmt));
  EXPECT_TRUE(q.Dequeue()->is_management);
}

// --- ChannelAccessManager ----------------------------------------------------------

ChannelAccessManager::Params BParams() {
  const PhyTiming t = TimingFor(PhyStandard::k80211b);
  ChannelAccessManager::Params p;
  p.slot = t.slot;
  p.sifs = t.sifs;
  p.difs = t.Difs();
  p.eifs = t.Eifs(AckDuration(BaseModeFor(PhyStandard::k80211b)));
  p.cw_min = t.cw_min;
  p.cw_max = t.cw_max;
  return p;
}

TEST(ChannelAccess, GrantAfterDifsPlusBackoffOnIdleMedium) {
  Simulator sim;
  ChannelAccessManager cam(&sim, BParams(), Rng(1));
  Time granted_at = Time::Zero();
  cam.SetAccessGrantedCallback([&] { granted_at = sim.Now(); });
  sim.Schedule(Time::Zero(), [&] { cam.RequestAccess(); });
  sim.Run();
  const auto slots = cam.last_backoff_slots();
  EXPECT_EQ(granted_at, BParams().difs + BParams().slot * static_cast<int64_t>(slots));
}

TEST(ChannelAccess, BackoffWithinWindow) {
  Simulator sim;
  ChannelAccessManager cam(&sim, BParams(), Rng(2));
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t draw = cam.DrawBackoffSlots(31);
    EXPECT_LE(draw, 31u);
  }
}

TEST(ChannelAccess, BackoffUniformity) {
  Simulator sim;
  ChannelAccessManager cam(&sim, BParams(), Rng(3));
  std::vector<int> counts(32, 0);
  for (int trial = 0; trial < 32000; ++trial) {
    ++counts[cam.DrawBackoffSlots(31)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 1000, 150);
  }
}

TEST(ChannelAccess, BusyMediumDefersGrant) {
  Simulator sim;
  ChannelAccessManager cam(&sim, BParams(), Rng(4));
  Time granted_at = Time::Zero();
  cam.SetAccessGrantedCallback([&] { granted_at = sim.Now(); });
  // Medium busy [0, 1000 us); request arrives at 100 us.
  sim.Schedule(Time::Zero(), [&] { cam.NotifyRxStart(Time::Micros(1000)); });
  sim.Schedule(Time::Micros(100), [&] { cam.RequestAccess(); });
  sim.Schedule(Time::Micros(1000), [&] { cam.NotifyRxEnd(true); });
  sim.Run();
  const Time expected = Time::Micros(1000) + BParams().difs +
                        BParams().slot * static_cast<int64_t>(cam.last_backoff_slots());
  EXPECT_EQ(granted_at, expected);
}

TEST(ChannelAccess, NavDefersLikePhysicalBusy) {
  Simulator sim;
  ChannelAccessManager cam(&sim, BParams(), Rng(5));
  Time granted_at = Time::Zero();
  cam.SetAccessGrantedCallback([&] { granted_at = sim.Now(); });
  sim.Schedule(Time::Zero(), [&] {
    cam.UpdateNav(Time::Millis(2));
    cam.RequestAccess();
  });
  sim.Run();
  EXPECT_GE(granted_at, Time::Millis(2) + BParams().difs);
}

TEST(ChannelAccess, EifsAfterCorruptReception) {
  Simulator sim;
  ChannelAccessManager cam(&sim, BParams(), Rng(6));
  Time granted_at = Time::Zero();
  cam.SetAccessGrantedCallback([&] { granted_at = sim.Now(); });
  sim.Schedule(Time::Zero(), [&] { cam.NotifyRxStart(Time::Micros(500)); });
  sim.Schedule(Time::Micros(500), [&] {
    cam.NotifyRxEnd(false);  // corrupt
    cam.RequestAccess();
  });
  sim.Run();
  const Time eifs_grant = Time::Micros(500) + BParams().eifs +
                          BParams().slot * static_cast<int64_t>(cam.last_backoff_slots());
  EXPECT_EQ(granted_at, eifs_grant);
  EXPECT_GT(BParams().eifs, BParams().difs);  // sanity: EIFS really is longer
}

TEST(ChannelAccess, BackoffFreezesDuringBusy) {
  Simulator sim;
  ChannelAccessManager cam(&sim, BParams(), Rng(8));
  Time granted_at = Time::Zero();
  cam.SetAccessGrantedCallback([&] { granted_at = sim.Now(); });
  sim.Schedule(Time::Zero(), [&] { cam.RequestAccess(); });
  sim.Run();
  const uint32_t slots = cam.last_backoff_slots();
  if (slots < 3) {
    GTEST_SKIP() << "draw too small to interrupt meaningfully";
  }
  // Re-run the same scenario with an interruption midway through backoff.
  Simulator sim2;
  ChannelAccessManager cam2(&sim2, BParams(), Rng(8));  // same seed → same draw
  Time granted2 = Time::Zero();
  cam2.SetAccessGrantedCallback([&] { granted2 = sim2.Now(); });
  sim2.Schedule(Time::Zero(), [&] { cam2.RequestAccess(); });
  // Interrupt after DIFS + 2 slots for 300 us.
  const Time interrupt_at = BParams().difs + BParams().slot * 2;
  sim2.ScheduleAt(interrupt_at, [&] { cam2.NotifyCcaBusyStart(Time::Micros(300)); });
  sim2.Run();
  // Two slots were consumed before the interruption; the rest resume after
  // busy + DIFS.
  const Time expected = interrupt_at + Time::Micros(300) + BParams().difs +
                        BParams().slot * static_cast<int64_t>(slots - 2);
  EXPECT_EQ(granted2, expected);
  EXPECT_GT(granted2, granted_at);
}

TEST(ChannelAccess, SecondRequestIsNoOp) {
  Simulator sim;
  ChannelAccessManager cam(&sim, BParams(), Rng(9));
  int grants = 0;
  cam.SetAccessGrantedCallback([&] { ++grants; });
  sim.Schedule(Time::Zero(), [&] {
    cam.RequestAccess();
    cam.RequestAccess();
  });
  sim.Run();
  EXPECT_EQ(grants, 1);
}

}  // namespace
}  // namespace wlansim
